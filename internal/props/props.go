// Package props is a property-declaration framework for the chaos
// harness, in the Antithesis workload idiom: instead of invariants buried
// inside ad-hoc test bodies, a run declares its correctness claims up
// front as named properties, drives an arbitrary workload against them,
// and emits a machine-readable verdict table at exit. A silent regression
// then has nowhere to hide — a property that stops being exercised flips
// its row to FAIL just as loudly as one that is violated.
//
// Three kinds of property cover the shapes a hand-off fabric needs:
//
//   - Always — an invariant that must hold at every check point and at
//     quiesce (conservation of items, synchrony of pairings, per-producer
//     FIFO on fair cores, no stranded waiter after Close). Its checker
//     closure is invoked continuously during the run (final=false) and
//     once after the workload has quiesced (final=true); any error fails
//     the property. Evidence counts successful checks.
//
//   - Sometimes — an event that must be observed at least once per run
//     (elimination fires, a cross-shard steal completes, a cancel races a
//     fulfill). A sometimes-property that never fires fails: the workload
//     stopped reaching the code it claims to test. Evidence counts
//     observations.
//
//   - Reachable — a registered fault-injection site that must actually be
//     hit. Its counter closure is sampled at verdict time; zero means the
//     chaos schedule no longer penetrates that site, which fails the run.
//
// Properties live in a Suite (one per structure-under-test
// configuration); suites aggregate into a Report, which renders the
// verdict table as text or JSON. All methods are safe for concurrent use
// by workload goroutines.
package props

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a property.
type Kind int

const (
	// Always properties must hold at every check and at quiesce.
	Always Kind = iota
	// Sometimes properties must be observed at least once per run.
	Sometimes
	// Reachable properties are fault sites that must actually be hit.
	Reachable
)

// String returns the kind's stable lower-case name (used in the verdict
// table and its JSON schema).
func (k Kind) String() string {
	switch k {
	case Always:
		return "always"
	case Sometimes:
		return "sometimes"
	case Reachable:
		return "reachable"
	default:
		return fmt.Sprintf("props.Kind(%d)", int(k))
	}
}

// maxDetails bounds the failure details retained per property; later
// failures only bump the counter so a hot violation cannot balloon memory.
const maxDetails = 6

// Property is one named correctness claim. Create properties through a
// Suite; the zero value is not usable.
type Property struct {
	name  string
	kind  Kind
	check func(final bool) error // Always only; may be nil
	count func() int64           // Reachable only

	evidence atomic.Int64
	failures atomic.Int64
	mu       sync.Mutex
	details  []string
}

// Name returns the property's stable name.
func (p *Property) Name() string { return p.name }

// Kind returns the property's kind.
func (p *Property) Kind() Kind { return p.kind }

// Observe records one piece of evidence (a sometimes-event firing, an
// always-check passing).
func (p *Property) Observe() { p.evidence.Add(1) }

// AddEvidence records n pieces of evidence at once (e.g. a metrics-counter
// delta). Non-positive n is a no-op.
func (p *Property) AddEvidence(n int64) {
	if n > 0 {
		p.evidence.Add(n)
	}
}

// Evidence returns the evidence count so far.
func (p *Property) Evidence() int64 {
	if p.kind == Reachable && p.count != nil {
		return p.count()
	}
	return p.evidence.Load()
}

// Fail records a violation with a formatted detail line. The first
// maxDetails details are retained; further failures only count.
func (p *Property) Fail(format string, args ...any) {
	p.failures.Add(1)
	p.mu.Lock()
	if len(p.details) < maxDetails {
		p.details = append(p.details, fmt.Sprintf(format, args...))
	}
	p.mu.Unlock()
}

// Failed reports whether any violation has been recorded.
func (p *Property) Failed() bool { return p.failures.Load() > 0 }

// pass resolves the property's verdict from its kind.
func (p *Property) pass() bool {
	switch p.kind {
	case Always:
		return p.failures.Load() == 0
	default: // Sometimes, Reachable
		return p.Evidence() > 0
	}
}

// detail renders the verdict-row detail string.
func (p *Property) detail() string {
	if p.pass() {
		return ""
	}
	switch p.kind {
	case Sometimes:
		return "never fired"
	case Reachable:
		return "site never reached"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	d := strings.Join(p.details, "; ")
	if extra := p.failures.Load() - int64(len(p.details)); extra > 0 {
		d += fmt.Sprintf(" (+%d more)", extra)
	}
	return d
}

// Suite is an ordered registry of properties for one configuration of the
// structure under test. Create one with NewSuite.
type Suite struct {
	label  string
	replay string

	mu      sync.Mutex
	ordered []*Property
	byName  map[string]*Property
}

// NewSuite returns an empty suite labeled for the verdict table (e.g.
// "queue/default").
func NewSuite(label string) *Suite {
	return &Suite{label: label, byName: make(map[string]*Property)}
}

// Label returns the suite's configuration label.
func (s *Suite) Label() string { return s.label }

// SetReplay attaches the copy-pasteable command that reproduces this
// suite's run; it is carried into the verdict report.
func (s *Suite) SetReplay(cmd string) { s.replay = cmd }

// Replay returns the suite's replay command.
func (s *Suite) Replay() string { return s.replay }

// add registers p, panicking on duplicate names (a harness wiring bug).
func (s *Suite) add(p *Property) *Property {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[p.name]; dup {
		panic("props: duplicate property " + p.name)
	}
	s.byName[p.name] = p
	s.ordered = append(s.ordered, p)
	return p
}

// Always declares an invariant checked continuously and at quiesce. The
// checker receives final=false on continuous checks and final=true once
// the workload has quiesced; a nil error is a pass (evidence++), a non-nil
// error fails the property. A nil checker declares a property whose
// violations are reported directly via Fail (e.g. a stranded-waiter watch
// owned by the scenario driver).
func (s *Suite) Always(name string, check func(final bool) error) *Property {
	return s.add(&Property{name: name, kind: Always, check: check})
}

// Sometimes declares an event that must be observed at least once per run
// via Observe/AddEvidence.
func (s *Suite) Sometimes(name string) *Property {
	return s.add(&Property{name: name, kind: Sometimes})
}

// Reachable declares a fault site (or any other coverage point) that must
// be hit: count is sampled at verdict time and must be positive. The
// closure typically wraps fault.Injector.Count for one site.
func (s *Suite) Reachable(name string, count func() int64) *Property {
	return s.add(&Property{name: name, kind: Reachable, count: count})
}

// Lookup returns the named property, or nil.
func (s *Suite) Lookup(name string) *Property {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byName[name]
}

// Observe records evidence for the named property. Unknown names panic:
// observing an undeclared property is a harness wiring bug, and silently
// dropping the evidence would hide it.
func (s *Suite) Observe(name string) {
	p := s.Lookup(name)
	if p == nil {
		panic("props: observe of undeclared property " + name)
	}
	p.Observe()
}

// CheckAlways runs every always-checker; passes count as evidence and
// failures are recorded with the checker's error. Scenario drivers call it
// periodically with final=false and once per scenario, after quiesce and
// drain, with final=true.
func (s *Suite) CheckAlways(final bool) {
	s.mu.Lock()
	props := append([]*Property(nil), s.ordered...)
	s.mu.Unlock()
	for _, p := range props {
		if p.kind != Always || p.check == nil {
			continue
		}
		if err := p.check(final); err != nil {
			p.Fail("%v", err)
		} else {
			p.Observe()
		}
	}
}

// Ok reports whether every property in the suite currently passes.
func (s *Suite) Ok() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.ordered {
		if !p.pass() {
			return false
		}
	}
	return true
}

// Verdict is one row of the verdict table.
type Verdict struct {
	// Property is the stable property name.
	Property string `json:"property"`
	// Kind is "always", "sometimes", or "reachable".
	Kind string `json:"kind"`
	// Verdict is "pass" or "fail".
	Verdict string `json:"verdict"`
	// Evidence counts supporting events: checks passed (always),
	// observations (sometimes), or injected hits (reachable).
	Evidence int64 `json:"evidence"`
	// Detail carries failure specifics; empty on a pass.
	Detail string `json:"detail,omitempty"`
}

// Pass reports whether the row passed.
func (v Verdict) Pass() bool { return v.Verdict == "pass" }

// Verdicts resolves every property into its verdict row, in declaration
// order (always, then sometimes, then reachable, preserving registration
// order within each kind).
func (s *Suite) Verdicts() []Verdict {
	s.mu.Lock()
	props := append([]*Property(nil), s.ordered...)
	s.mu.Unlock()
	sort.SliceStable(props, func(i, j int) bool { return props[i].kind < props[j].kind })
	out := make([]Verdict, 0, len(props))
	for _, p := range props {
		v := Verdict{
			Property: p.name,
			Kind:     p.kind.String(),
			Verdict:  "fail",
			Evidence: p.Evidence(),
			Detail:   p.detail(),
		}
		if p.pass() {
			v.Verdict = "pass"
		}
		out = append(out, v)
	}
	return out
}

// ConfigReport is the verdict table for one suite (one configuration of
// the structure under test).
type ConfigReport struct {
	// Config is the suite label, e.g. "queue/default".
	Config string `json:"config"`
	// Replay is the copy-pasteable command reproducing this run.
	Replay string `json:"replay,omitempty"`
	// OK is true when every row passed.
	OK bool `json:"ok"`
	// Verdicts are the property rows.
	Verdicts []Verdict `json:"verdicts"`
}

// Report is the machine-readable verdict table over every configuration of
// a chaos run.
type Report struct {
	// Seed is the fault-injection / schedule seed of the run; re-running
	// with the same seed replays the same injected-event stream.
	Seed uint64 `json:"seed"`
	// Procs is the GOMAXPROCS the run used.
	Procs int `json:"procs"`
	// Scenarios lists the scenario library entries that were driven.
	Scenarios []string `json:"scenarios"`
	// OK is true when every config's every row passed.
	OK bool `json:"ok"`
	// Configs holds one verdict table per configuration.
	Configs []ConfigReport `json:"configs"`
}

// NewReport returns an empty report for the given seed and scenario set.
func NewReport(seed uint64, procs int, scenarios []string) *Report {
	return &Report{Seed: seed, Procs: procs, Scenarios: scenarios, OK: true}
}

// Add resolves s's verdicts into the report.
func (r *Report) Add(s *Suite) {
	cr := ConfigReport{Config: s.Label(), Replay: s.Replay(), OK: true, Verdicts: s.Verdicts()}
	for _, v := range cr.Verdicts {
		if !v.Pass() {
			cr.OK = false
			r.OK = false
		}
	}
	r.Configs = append(r.Configs, cr)
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil { // impossible: the report is plain data
		panic(err)
	}
	return b
}

// Render returns the human-readable verdict table: one block per config,
// one row per property, with the replay command on every failing block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "property verdicts (seed=%d procs=%d scenarios=%s)\n",
		r.Seed, r.Procs, strings.Join(r.Scenarios, ","))
	for _, cr := range r.Configs {
		status := "PASS"
		if !cr.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "\n=== %-24s %s\n", cr.Config, status)
		w := 8
		for _, v := range cr.Verdicts {
			if len(v.Property) > w {
				w = len(v.Property)
			}
		}
		for _, v := range cr.Verdicts {
			fmt.Fprintf(&b, "  %-9s %-*s %-4s %10d", v.Kind, w, v.Property, v.Verdict, v.Evidence)
			if v.Detail != "" {
				fmt.Fprintf(&b, "  %s", v.Detail)
			}
			b.WriteByte('\n')
		}
		if !cr.OK && cr.Replay != "" {
			fmt.Fprintf(&b, "  replay: %s\n", cr.Replay)
		}
	}
	return b.String()
}
