package sem

import (
	"sync"
	"testing"
)

// The uncontended acquire/release round trip, per semaphore variant. This
// quantifies the fast-path streamlining the paper's §3.1 attributes to
// dl.util.concurrent: Fast should be several times cheaper than the
// queue-based variants when no blocking occurs.
func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	b.Run("fifo", func(b *testing.B) {
		s := New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Acquire()
			s.Release()
		}
	})
	b.Run("barging", func(b *testing.B) {
		s := NewBarging(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Acquire()
			s.Release()
		}
	})
	b.Run("fast", func(b *testing.B) {
		s := NewFast(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Acquire()
			s.Release()
		}
	})
}

// Contended mutual exclusion through each semaphore variant.
func BenchmarkContendedMutex(b *testing.B) {
	type s interface {
		Acquire()
		Release()
	}
	run := func(b *testing.B, sem s) {
		const workers = 4
		var wg sync.WaitGroup
		per := b.N / workers
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					sem.Acquire()
					sem.Release()
				}
			}()
		}
		wg.Wait()
	}
	b.Run("fifo", func(b *testing.B) { run(b, New(1)) })
	b.Run("barging", func(b *testing.B) { run(b, NewBarging(1)) })
	b.Run("fast", func(b *testing.B) { run(b, NewFast(1)) })
}
