// Package sem implements counting semaphores with scheduler-based blocking.
//
// Semaphores are the substrate of Hanson's synchronous queue (Listing 1 of
// the paper). The paper's footnote defines them precisely: each semaphore
// contains a counter and a list of waiting threads; acquire decrements the
// counter and waits for it to be nonnegative; release increments it and
// unblocks a waiting thread if the result is nonpositive. In effect a
// semaphore is a non-synchronous concurrent queue transferring null.
//
// Two variants are provided. Semaphore wakes waiters in strict FIFO order
// (like a Java fair Semaphore); BargingSemaphore allows a releasing thread's
// permit to be seized by a newly arriving acquirer (like Java's default
// nonfair Semaphore), which trades fairness for throughput.
package sem

import (
	"container/list"
	"sync"
	"time"

	"synchq/internal/park"
)

// Semaphore is a FIFO-fair counting semaphore. The zero value is a semaphore
// with zero permits; use New to start with a different count. A Semaphore
// must not be copied after first use.
type Semaphore struct {
	mu      sync.Mutex
	permits int
	waiters list.List // of *park.Parker
}

// New returns a semaphore initialized with the given number of permits.
// Negative initial counts are allowed (the paper's Hanson queue does not
// need them, but classic semaphore semantics permit starting in debt).
func New(permits int) *Semaphore {
	return &Semaphore{permits: permits}
}

// Acquire obtains one permit, blocking until one is available. Waiters are
// served in arrival order.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	if s.permits > 0 && s.waiters.Len() == 0 {
		s.permits--
		s.mu.Unlock()
		return
	}
	p := park.New()
	elem := s.waiters.PushBack(p)
	s.mu.Unlock()
	p.Park()
	_ = elem
}

// TryAcquire obtains one permit only if one is immediately available and no
// earlier waiter is queued. It reports whether the permit was obtained.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permits > 0 && s.waiters.Len() == 0 {
		s.permits--
		return true
	}
	return false
}

// AcquireTimeout obtains one permit, waiting at most d. It reports whether
// the permit was obtained. On timeout the waiter removes itself from the
// queue; a permit handed to it in the race window is returned to the pool.
func (s *Semaphore) AcquireTimeout(d time.Duration) bool {
	s.mu.Lock()
	if s.permits > 0 && s.waiters.Len() == 0 {
		s.permits--
		s.mu.Unlock()
		return true
	}
	if d <= 0 {
		s.mu.Unlock()
		return false
	}
	p := park.New()
	elem := s.waiters.PushBack(p)
	s.mu.Unlock()

	if p.ParkTimeout(d) {
		return true
	}
	// Timed out. Remove ourselves; if Release already granted us the
	// permit (removed our element and unparked), consume that late permit
	// and hand it onward instead of losing it.
	s.mu.Lock()
	for e := s.waiters.Front(); e != nil; e = e.Next() {
		if e == elem {
			s.waiters.Remove(e)
			s.mu.Unlock()
			return false
		}
	}
	// Already dequeued by Release: the unpark is in flight (or landed
	// between our timeout and taking the lock). Absorb it and re-release.
	s.mu.Unlock()
	p.Park() // cannot block long: permit is committed to us
	s.Release()
	return false
}

// Release returns one permit, unblocking the longest-waiting acquirer if any.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if e := s.waiters.Front(); e != nil {
		p := s.waiters.Remove(e).(*park.Parker)
		s.mu.Unlock()
		p.Unpark()
		return
	}
	s.permits++
	s.mu.Unlock()
}

// Permits returns the number of currently available permits. It is intended
// for tests and monitoring; the value may be stale by the time it is read.
func (s *Semaphore) Permits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permits
}

// Waiters returns the number of queued acquirers. Intended for tests.
func (s *Semaphore) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}

// BargingSemaphore is an unfair counting semaphore: a permit released while
// acquirers race may be taken by a thread that never queued. This matches
// the default (nonfair) mode of Java's Semaphore and is the variant Hanson's
// algorithm was measured with.
type BargingSemaphore struct {
	mu      sync.Mutex
	permits int
	waiters list.List // of *bsWaiter
}

type bsWaiter struct {
	p     *park.Parker
	taken bool // set under mu when a permit is assigned
}

// NewBarging returns an unfair semaphore with the given permits.
func NewBarging(permits int) *BargingSemaphore {
	return &BargingSemaphore{permits: permits}
}

// Acquire obtains one permit, blocking until available. Arriving threads may
// barge ahead of queued waiters when a permit is free.
func (s *BargingSemaphore) Acquire() {
	s.mu.Lock()
	if s.permits > 0 {
		s.permits--
		s.mu.Unlock()
		return
	}
	w := &bsWaiter{p: park.New()}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()
	for {
		w.p.Park()
		s.mu.Lock()
		if w.taken {
			s.waiters.Remove(elem)
			s.mu.Unlock()
			return
		}
		// Spurious wake relative to permit assignment cannot happen
		// with this parker, but retry defensively.
		s.mu.Unlock()
	}
}

// TryAcquire obtains a permit only if immediately available.
func (s *BargingSemaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permits > 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit. If waiters are queued, the front waiter is
// granted the permit directly (it cannot be barged once granted).
func (s *BargingSemaphore) Release() {
	s.mu.Lock()
	for e := s.waiters.Front(); e != nil; e = e.Next() {
		w := e.Value.(*bsWaiter)
		if !w.taken {
			w.taken = true
			s.mu.Unlock()
			w.p.Unpark()
			return
		}
	}
	s.permits++
	s.mu.Unlock()
}

// Permits returns the number of available permits (tests/monitoring).
func (s *BargingSemaphore) Permits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permits
}
