package sem

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSemaphoreBasicAcquireRelease(t *testing.T) {
	s := New(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with one permit")
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	s := New(0)
	var acquired atomic.Bool
	go func() {
		s.Acquire()
		acquired.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("Acquire returned with zero permits")
	}
	s.Release()
	deadline := time.Now().Add(5 * time.Second)
	for !acquired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Release did not unblock Acquire")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSemaphoreFIFOWakeupOrder(t *testing.T) {
	s := New(0)
	const n = 6
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.Acquire()
			order <- i
		}()
		// Ensure waiter i is queued before starting i+1.
		deadline := time.Now().Add(5 * time.Second)
		for s.Waiters() != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := 0; i < n; i++ {
		s.Release()
		if got := <-order; got != i {
			t.Fatalf("wakeup #%d was waiter %d (FIFO violated)", i, got)
		}
	}
}

func TestSemaphoreAcquireTimeout(t *testing.T) {
	s := New(0)
	t0 := time.Now()
	if s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("AcquireTimeout succeeded with zero permits")
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("AcquireTimeout returned early")
	}
	if s.Waiters() != 0 {
		t.Fatal("timed-out waiter still queued")
	}
	s.Release()
	if !s.AcquireTimeout(time.Second) {
		t.Fatal("AcquireTimeout failed with a permit available")
	}
	// Zero/negative patience polls.
	if s.AcquireTimeout(0) {
		t.Fatal("zero-patience acquire succeeded with no permit")
	}
}

func TestSemaphoreTimeoutRaceDoesNotLeakPermit(t *testing.T) {
	// Release racing with timeout: either the waiter gets the permit or
	// the permit must remain available afterwards.
	for i := 0; i < 200; i++ {
		s := New(0)
		got := make(chan bool)
		go func() { got <- s.AcquireTimeout(time.Duration(i%3) * time.Millisecond) }()
		time.Sleep(time.Duration(i%5) * 200 * time.Microsecond)
		s.Release()
		if !<-got {
			// Waiter timed out: the released permit must not be
			// lost.
			if !s.AcquireTimeout(time.Second) {
				t.Fatalf("iteration %d: permit leaked on timeout race", i)
			}
		}
	}
}

func TestSemaphoreAsMutex(t *testing.T) {
	s := New(1)
	var counter int
	var wg sync.WaitGroup
	const workers, rounds = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				s.Acquire()
				counter++
				s.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*rounds)
	}
}

func TestSemaphoreCountingInvariant(t *testing.T) {
	// Property: after any sequence of k releases and j acquires
	// (j <= k + initial), available permits equal initial + k - j.
	f := func(initial uint8, releases uint8) bool {
		ini := int(initial % 16)
		rel := int(releases % 16)
		s := New(ini)
		for i := 0; i < rel; i++ {
			s.Release()
		}
		total := ini + rel
		for i := 0; i < total; i++ {
			if !s.TryAcquire() {
				return false
			}
		}
		return !s.TryAcquire() && s.Permits() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBargingSemaphoreBasic(t *testing.T) {
	s := NewBarging(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a permit")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	s.Release()
	if s.Permits() != 1 {
		t.Fatalf("Permits = %d, want 1", s.Permits())
	}
}

func TestBargingSemaphoreUnblocks(t *testing.T) {
	s := NewBarging(0)
	const n = 5
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			s.Acquire()
			done.Done()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < n; i++ {
		s.Release()
	}
	ok := make(chan struct{})
	go func() { done.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("releases did not unblock all waiters")
	}
}

func TestBargingSemaphoreAsMutex(t *testing.T) {
	s := NewBarging(1)
	var counter int
	var wg sync.WaitGroup
	const workers, rounds = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				s.Acquire()
				counter++
				s.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}
