package sem

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"

	"synchq/internal/park"
)

// Fast is a counting semaphore with a Lamport-style fast path: an
// uncontended Acquire or Release is a single atomic add with no lock and
// no blocking. The paper (§3.1) notes that exactly this streamlining — "a
// fast-path acquire sequence [Lamport 1987]" — was applied to the
// semaphores of early dl.util.concurrent releases to reduce the cost of
// Hanson-style queues; baseline.HansonFast reproduces that configuration.
//
// The counter encodes permits when non-negative and the number of waiting
// acquirers when negative. Fast deliberately offers no timed acquire: with
// the counter and the wait list updated separately, a timeout would have
// to withdraw a wait that a releaser may already have committed a wake-up
// to, and the two bookkeeping sites cannot be reconciled atomically
// without giving up the lock-free fast path. This mirrors the paper's
// observation that Hanson-style queues offer "no simple way" to support
// timeout; use Semaphore for timed acquisition. Use NewFast to create one.
type Fast struct {
	state   atomic.Int64
	mu      sync.Mutex
	waiters list.List // of *fastWaiter
}

type fastWaiter struct {
	p *park.Parker
}

// NewFast returns a fast-path semaphore with the given permits.
func NewFast(permits int) *Fast {
	f := &Fast{}
	f.state.Store(int64(permits))
	return f
}

// Acquire obtains one permit; the uncontended case is a single atomic add.
func (f *Fast) Acquire() {
	if f.state.Add(-1) >= 0 {
		return // fast path: permit was available
	}
	// Slow path: register and park. Release has already (or will have)
	// committed one wake-up for us.
	w := &fastWaiter{p: park.New()}
	f.mu.Lock()
	f.waiters.PushBack(w)
	f.mu.Unlock()
	w.p.Park()
}

// TryAcquire obtains a permit only if one is immediately available.
func (f *Fast) TryAcquire() bool {
	for {
		s := f.state.Load()
		if s <= 0 {
			return false
		}
		if f.state.CompareAndSwap(s, s-1) {
			return true
		}
	}
}

// Release returns one permit; the uncontended case is a single atomic add.
func (f *Fast) Release() {
	if f.state.Add(1) > 0 {
		return // fast path: nobody was waiting
	}
	// A waiter is committed to this permit but may not have finished
	// registering; spin briefly until it appears.
	for i := 0; ; i++ {
		f.mu.Lock()
		if e := f.waiters.Front(); e != nil {
			w := f.waiters.Remove(e).(*fastWaiter)
			f.mu.Unlock()
			w.p.Unpark()
			return
		}
		f.mu.Unlock()
		if i&7 == 7 {
			runtime.Gosched()
		}
	}
}

// Permits returns the number of currently available permits (non-negative
// part of the state). Intended for tests and monitoring.
func (f *Fast) Permits() int {
	s := f.state.Load()
	if s < 0 {
		return 0
	}
	return int(s)
}
