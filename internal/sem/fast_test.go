package sem

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFastBasicAcquireRelease(t *testing.T) {
	f := NewFast(2)
	f.Acquire()
	f.Acquire()
	if f.TryAcquire() {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	f.Release()
	if !f.TryAcquire() {
		t.Fatal("TryAcquire failed with one permit")
	}
}

func TestFastBlocksAtZero(t *testing.T) {
	f := NewFast(0)
	var acquired atomic.Bool
	go func() {
		f.Acquire()
		acquired.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("Acquire returned with zero permits")
	}
	f.Release()
	deadline := time.Now().Add(5 * time.Second)
	for !acquired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Release did not unblock Acquire")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFastReleaseBeforeRegistrationCompletes(t *testing.T) {
	// Hammer the registration race: acquirers decrement, then releasers
	// fire before the acquirer reaches the wait list. Release must spin
	// until the committed waiter registers; nothing may deadlock.
	f := NewFast(0)
	const rounds = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.Acquire()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.Release()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fast semaphore deadlocked under acquire/release hammer")
	}
}

func TestFastAsMutex(t *testing.T) {
	f := NewFast(1)
	var counter int
	var wg sync.WaitGroup
	const workers, rounds = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				f.Acquire()
				counter++
				f.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*rounds)
	}
}

func TestFastCountingInvariant(t *testing.T) {
	f := func(initial uint8, releases uint8) bool {
		ini := int(initial % 16)
		rel := int(releases % 16)
		s := NewFast(ini)
		for i := 0; i < rel; i++ {
			s.Release()
		}
		total := ini + rel
		for i := 0; i < total; i++ {
			if !s.TryAcquire() {
				return false
			}
		}
		return !s.TryAcquire() && s.Permits() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastManyWaitersAllWake(t *testing.T) {
	f := NewFast(0)
	const n = 16
	var woke sync.WaitGroup
	woke.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			f.Acquire()
			woke.Done()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < n; i++ {
		f.Release()
	}
	done := make(chan struct{})
	go func() { woke.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("not all waiters woke")
	}
	if f.Permits() != 0 {
		t.Fatalf("Permits = %d after balanced run, want 0", f.Permits())
	}
}
