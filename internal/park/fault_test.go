package park

import (
	"testing"
	"time"

	"synchq/internal/fault"
)

// TestInjectedSpuriousWake: a faulty parker may return Unparked without a
// permit. The waiter contract (re-validate on every Unparked return) makes
// this safe; this test pins down the mechanism itself.
func TestInjectedSpuriousWake(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 9, SpuriousWakeRate: 1, Budget: 1})
	p := NewFaulty(nil, inj)

	start := time.Now()
	if r := p.Wait(time.Now().Add(time.Minute), nil); r != Unparked {
		t.Fatalf("Wait = %v, want spurious Unparked", r)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("spurious wake took %v; it should fire before blocking", elapsed)
	}
	if n := inj.Count(fault.ParkSpurious); n != 1 {
		t.Fatalf("spurious-wake count = %d, want 1", n)
	}

	// Budget spent: the next wait blocks for real and times out normally.
	if r := p.Wait(time.Now().Add(5*time.Millisecond), nil); r != DeadlineExceeded {
		t.Fatalf("post-budget Wait = %v, want DeadlineExceeded", r)
	}
	if n := inj.Count(fault.ParkSpurious); n != 1 {
		t.Fatalf("budget overrun: spurious-wake count = %d, want 1", n)
	}
}

// TestInjectedTimerSkew: a skewed timer still respects the wait contract —
// the wait ends with DeadlineExceeded, within the configured skew bound of
// the requested deadline.
func TestInjectedTimerSkew(t *testing.T) {
	const maxSkew = 5 * time.Millisecond
	inj := fault.New(fault.Config{Seed: 9, TimerSkewRate: 1, MaxTimerSkew: maxSkew})
	p := NewFaulty(nil, inj)

	deadline := 20 * time.Millisecond
	start := time.Now()
	if r := p.Wait(time.Now().Add(deadline), nil); r != DeadlineExceeded {
		t.Fatalf("Wait = %v, want DeadlineExceeded", r)
	}
	elapsed := time.Since(start)
	if elapsed < deadline-maxSkew-time.Millisecond {
		t.Errorf("skewed wait returned after %v; shortening bound is %v", elapsed, deadline-maxSkew)
	}
	// Upper bound is loose: scheduling delay stacks on top of the skew.
	if elapsed > deadline+maxSkew+2*time.Second {
		t.Errorf("skewed wait returned after %v; lengthening bound is %v", elapsed, deadline+maxSkew)
	}
	if n := inj.Count(fault.TimerSkew); n < 1 {
		t.Errorf("timer-skew count = %d, want >= 1", n)
	}

	// A real unpark still wins immediately even with skew armed.
	p.Unpark()
	if r := p.Wait(time.Now().Add(time.Minute), nil); r != Unparked {
		t.Fatalf("Wait with permit = %v, want Unparked", r)
	}
}
