package park

import (
	"testing"
	"time"
)

// BenchmarkUnparkPark measures the stored-permit fast path: Unpark followed
// by a Park that never blocks.
func BenchmarkUnparkPark(b *testing.B) {
	p := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Unpark()
		p.Park()
	}
}

// BenchmarkPingPong measures a full block/wake round trip between two
// goroutines — the descheduling cost the paper's spin-then-park policy
// tries to avoid paying on near-simultaneous arrivals.
func BenchmarkPingPong(b *testing.B) {
	a, z := New(), New()
	go func() {
		for {
			a.Park()
			z.Unpark()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Unpark()
		z.Park()
	}
}

// BenchmarkParkTimeoutMiss measures a timed wait that expires — the pooled
// timer path taken by every failed timed offer/poll.
func BenchmarkParkTimeoutMiss(b *testing.B) {
	p := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParkTimeout(time.Microsecond)
	}
}

// BenchmarkWaitFastPath measures Wait when the permit is already stored.
func BenchmarkWaitFastPath(b *testing.B) {
	p := New()
	deadline := time.Now().Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Unpark()
		p.Wait(deadline, nil)
	}
}
