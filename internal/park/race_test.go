//go:build race

package park

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool deliberately drops a quarter of Puts (see sync/pool.go) and
// the instrumentation shifts allocation accounting, so exact-zero
// allocation assertions on pooled paths are skipped.
const raceEnabled = true
