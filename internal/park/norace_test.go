//go:build !race

package park

const raceEnabled = false
