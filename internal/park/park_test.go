package park

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnparkBeforeParkIsNotLost(t *testing.T) {
	p := New()
	p.Unpark()
	done := make(chan struct{})
	go func() {
		p.Park() // must not block: permit already stored
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Park blocked despite a stored permit")
	}
}

func TestUnparksCoalesce(t *testing.T) {
	p := New()
	p.Unpark()
	p.Unpark()
	p.Unpark()
	if !p.TryPark() {
		t.Fatal("first TryPark failed after Unparks")
	}
	if p.TryPark() {
		t.Fatal("multiple Unparks stored more than one permit")
	}
}

func TestParkBlocksUntilUnpark(t *testing.T) {
	p := New()
	var woke atomic.Bool
	go func() {
		p.Park()
		woke.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if woke.Load() {
		t.Fatal("Park returned without a permit")
	}
	p.Unpark()
	deadline := time.Now().Add(5 * time.Second)
	for !woke.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Unpark did not wake the parked goroutine")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParkTimeoutExpires(t *testing.T) {
	p := New()
	t0 := time.Now()
	if p.ParkTimeout(20 * time.Millisecond) {
		t.Fatal("ParkTimeout returned true without a permit")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("ParkTimeout returned after %v, too early", elapsed)
	}
}

func TestParkTimeoutConsumesPermit(t *testing.T) {
	p := New()
	p.Unpark()
	if !p.ParkTimeout(time.Second) {
		t.Fatal("ParkTimeout missed a stored permit")
	}
}

func TestParkTimeoutNonPositivePolls(t *testing.T) {
	p := New()
	if p.ParkTimeout(0) {
		t.Fatal("zero-timeout park returned true without a permit")
	}
	p.Unpark()
	if !p.ParkTimeout(0) {
		t.Fatal("zero-timeout park missed a stored permit")
	}
	if p.ParkTimeout(-time.Second) {
		t.Fatal("negative-timeout park returned true without a permit")
	}
}

func TestParkDeadlineZeroMeansForever(t *testing.T) {
	p := New()
	done := make(chan bool)
	go func() { done <- p.ParkDeadline(time.Time{}) }()
	time.Sleep(10 * time.Millisecond)
	p.Unpark()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("ParkDeadline(zero) returned false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ParkDeadline(zero) never woke")
	}
}

func TestParkChan(t *testing.T) {
	p := New()
	cancel := make(chan struct{})
	done := make(chan bool)
	go func() { done <- p.ParkChan(cancel) }()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	if ok := <-done; ok {
		t.Fatal("ParkChan reported a permit when the cancel fired")
	}
	// nil channel waits for the permit.
	p.Unpark()
	if !p.ParkChan(nil) {
		t.Fatal("ParkChan(nil) missed a stored permit")
	}
}

func TestWaitResults(t *testing.T) {
	p := New()
	p.Unpark()
	if r := p.Wait(time.Time{}, nil); r != Unparked {
		t.Fatalf("Wait = %v, want Unparked", r)
	}
	if r := p.Wait(time.Now().Add(10*time.Millisecond), nil); r != DeadlineExceeded {
		t.Fatalf("Wait = %v, want DeadlineExceeded", r)
	}
	if r := p.Wait(time.Now().Add(-time.Second), nil); r != DeadlineExceeded {
		t.Fatalf("Wait(past deadline) = %v, want DeadlineExceeded", r)
	}
	cancel := make(chan struct{})
	close(cancel)
	if r := p.Wait(time.Time{}, cancel); r != Canceled {
		t.Fatalf("Wait = %v, want Canceled", r)
	}
	// Permit beats everything when already available.
	p.Unpark()
	if r := p.Wait(time.Now().Add(time.Hour), cancel); r != Unparked {
		t.Fatalf("Wait = %v, want Unparked (fast path)", r)
	}
}

func TestManyParkUnparkCycles(t *testing.T) {
	p := New()
	const rounds = 10000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.Park()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.Unpark()
			// Pace the permits: each Unpark must be consumed, so
			// wait for the state word to drop the permit first.
			for p.state.Load() == pPermit {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	wg.Wait()
}

func TestConcurrentUnparkersSingleParker(t *testing.T) {
	// Permits coalesce, so N concurrent Unparks wake at least one Park;
	// the parker must never deadlock nor wake more times than Unparks.
	p := New()
	var wakes atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if p.ParkTimeout(time.Millisecond) {
				wakes.Add(1)
			}
		}
	}()
	var wg sync.WaitGroup
	const unparks = 1000
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < unparks/10; j++ {
				p.Unpark()
				time.Sleep(10 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	if w := wakes.Load(); w == 0 || w > unparks {
		t.Fatalf("wakes = %d, want between 1 and %d", w, unparks)
	}
}

func TestParkUnparkCycleDoesNotAllocate(t *testing.T) {
	// The permit fast path (Unpark then Park) must be allocation-free,
	// and a slow-path wait must only touch pooled notifiers/timers. The
	// fast path is deterministic, so pin it to exactly zero.
	p := New()
	if n := testing.AllocsPerRun(1000, func() {
		p.Unpark()
		p.Park()
	}); n != 0 {
		t.Fatalf("Unpark+Park fast path allocated %v allocs/op, want 0", n)
	}
	// Slow path: warm the pools, then require steady-state zero. The
	// partner goroutine only spins on the state word, so its loop does
	// not allocate either.
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race, so the pooled notifier path cannot be held to zero allocations")
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Unpark()
		}
	}()
	for i := 0; i < 100; i++ {
		p.ParkTimeout(time.Second)
	}
	if n := testing.AllocsPerRun(200, func() {
		p.ParkTimeout(time.Second)
	}); n > 0 {
		t.Fatalf("steady-state ParkTimeout allocated %v allocs/op, want 0", n)
	}
	close(stop)
}
