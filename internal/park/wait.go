package park

import (
	"time"

	"synchq/internal/metrics"
)

// WaitResult reports why a Wait call returned.
type WaitResult int

const (
	// Unparked means the permit was consumed.
	Unparked WaitResult = iota
	// DeadlineExceeded means the deadline passed first.
	DeadlineExceeded
	// Canceled means the cancel channel fired first.
	Canceled
)

// Wait blocks until the permit is available, the deadline passes, or the
// cancel channel fires, whichever comes first. A zero deadline means no
// deadline; a nil cancel channel never fires. Wait(zero, nil) is equivalent
// to Park.
//
// Under fault injection (NewFaulty) Wait may also return Unparked without
// a permit (a spurious wakeup) or observe a skewed timer, so callers must
// re-validate their wait condition on every Unparked return — which the
// synchronous queue wait loops do anyway, since a real Unpark only signals
// "look again".
func (p *Parker) Wait(deadline time.Time, cancel <-chan struct{}) WaitResult {
	return p.wait(deadline, cancel, true)
}

// wait is the shared slow path behind every waiting method. faulty selects
// whether the injector's spurious-unpark and timer-skew sites apply (Park's
// exact contract opts out).
//
// The protocol: consume an available permit; otherwise attach a pooled
// notifier, publish the parked state, and block on notifier/timer/cancel.
// The state word is the truth — a notifier token only means "re-examine the
// state word", so stale tokens (from a previous wait, or from an unparker
// racing the detach) cause one extra loop iteration, never a wrong result.
func (p *Parker) wait(deadline time.Time, cancel <-chan struct{}, faulty bool) WaitResult {
	// Fast path: permit already available.
	if p.state.CompareAndSwap(pPermit, pEmpty) {
		return Unparked
	}

	if faulty && p.f.SpuriousWake() {
		return Unparked
	}

	var timerC <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if faulty {
			d = p.f.SkewTimer(d)
		}
		if d <= 0 {
			return DeadlineExceeded
		}
		t := timerPool.Get().(*time.Timer)
		t.Reset(d)
		defer func() {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			timerPool.Put(t)
		}()
		timerC = t.C
	}

	// Attach a notifier for this wait. It may carry a stale token from a
	// previous life; drain it so we don't wake instantly for nothing (a
	// token arriving after the drain is indistinguishable from a spurious
	// unpark and equally harmless).
	n := sigPool.Get().(*notifier)
	select {
	case <-n.ch:
	default:
	}
	p.sig.Store(n)

	p.m.Inc(metrics.Parks)
	// The blocked interval starts here: everything before this point was
	// nonblocking permit negotiation. detach records the interval into the
	// park-time histogram, covering re-parks after stale tokens too.
	t0 := p.m.Start()
	for {
		if !p.state.CompareAndSwap(pEmpty, pParked) {
			// Not empty: a permit arrived between the fast path and
			// here (or a stale-token loop already disarmed us).
			if p.state.CompareAndSwap(pPermit, pEmpty) {
				return p.detach(n, t0, Unparked)
			}
			continue
		}
		select {
		case <-n.ch:
			// Woken by a token. The state word decides whether it was
			// a real permit delivery.
			if p.state.CompareAndSwap(pPermit, pEmpty) {
				return p.detach(n, t0, Unparked)
			}
			// Stale token: disarm back to empty and loop to re-park.
			// If the disarm loses, a real unparker just won and the
			// next iteration consumes the permit.
			p.state.CompareAndSwap(pParked, pEmpty)
		case <-timerC:
			// Disarm. If the disarm loses, an unparker delivered a
			// permit concurrently with the timeout: keep it stored for
			// the owner's next wait (the same outcome the old
			// channel-based Parker had when the timer won the select).
			p.state.CompareAndSwap(pParked, pEmpty)
			return p.detach(n, t0, DeadlineExceeded)
		case <-cancel:
			p.state.CompareAndSwap(pParked, pEmpty)
			return p.detach(n, t0, Canceled)
		}
	}
}

// detach unhooks the notifier after a slow-path wait and recycles it. An
// unparker that already loaded the pointer may still send one token into
// the recycled notifier; the Get-side drain and the hint-only token
// contract make that benign. t0 is the blocked interval's start, recorded
// into the park-time histogram regardless of how the wait ended — a
// timed-out park was still time spent blocked.
func (p *Parker) detach(n *notifier, t0 int64, r WaitResult) WaitResult {
	p.m.Since(metrics.ParkNs, t0)
	p.sig.Store(nil)
	select {
	case <-n.ch:
	default:
	}
	sigPool.Put(n)
	return r
}
