package park

import (
	"time"

	"synchq/internal/metrics"
)

// WaitResult reports why a Wait call returned.
type WaitResult int

const (
	// Unparked means the permit was consumed.
	Unparked WaitResult = iota
	// DeadlineExceeded means the deadline passed first.
	DeadlineExceeded
	// Canceled means the cancel channel fired first.
	Canceled
)

// Wait blocks until the permit is available, the deadline passes, or the
// cancel channel fires, whichever comes first. A zero deadline means no
// deadline; a nil cancel channel never fires. Wait(zero, nil) is equivalent
// to Park.
//
// Under fault injection (NewFaulty) Wait may also return Unparked without
// a permit (a spurious wakeup) or observe a skewed timer, so callers must
// re-validate their wait condition on every Unparked return — which the
// synchronous queue wait loops do anyway, since a real Unpark only signals
// "look again".
func (p *Parker) Wait(deadline time.Time, cancel <-chan struct{}) WaitResult {
	// Fast path: permit already available.
	select {
	case <-p.ch:
		return Unparked
	default:
	}

	if p.f.SpuriousWake() {
		return Unparked
	}

	var timerC <-chan time.Time
	if !deadline.IsZero() {
		d := p.f.SkewTimer(time.Until(deadline))
		if d <= 0 {
			return DeadlineExceeded
		}
		t := timerPool.Get().(*time.Timer)
		t.Reset(d)
		defer func() {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			timerPool.Put(t)
		}()
		timerC = t.C
	}

	p.m.Inc(metrics.Parks)
	select {
	case <-p.ch:
		return Unparked
	case <-timerC:
		return DeadlineExceeded
	case <-cancel:
		return Canceled
	}
}
