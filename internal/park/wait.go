package park

import (
	"time"

	"synchq/internal/metrics"
)

// WaitResult reports why a Wait call returned.
type WaitResult int

const (
	// Unparked means the permit was consumed.
	Unparked WaitResult = iota
	// DeadlineExceeded means the deadline passed first.
	DeadlineExceeded
	// Canceled means the cancel channel fired first.
	Canceled
)

// Wait blocks until the permit is available, the deadline passes, or the
// cancel channel fires, whichever comes first. A zero deadline means no
// deadline; a nil cancel channel never fires. Wait(zero, nil) is equivalent
// to Park.
func (p *Parker) Wait(deadline time.Time, cancel <-chan struct{}) WaitResult {
	// Fast path: permit already available.
	select {
	case <-p.ch:
		return Unparked
	default:
	}

	var timerC <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return DeadlineExceeded
		}
		t := timerPool.Get().(*time.Timer)
		t.Reset(d)
		defer func() {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			timerPool.Put(t)
		}()
		timerC = t.C
	}

	p.m.Inc(metrics.Parks)
	select {
	case <-p.ch:
		return Unparked
	case <-timerC:
		return DeadlineExceeded
	case <-cancel:
		return Canceled
	}
}
