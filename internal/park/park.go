// Package park provides goroutine blocking with permit semantics, modeled on
// java.util.concurrent.locks.LockSupport, which the paper's implementations
// use to deschedule waiting threads.
//
// A Parker holds at most one permit. Unpark makes the permit available;
// Park consumes the permit, blocking until one is available. An Unpark that
// arrives before the corresponding Park is therefore never lost — exactly
// the property the synchronous queue algorithms rely on, because the
// fulfilling thread may call Unpark between the waiter's decision to block
// and the waiter actually blocking.
package park

import (
	"sync"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Parker blocks and unblocks a single goroutine with one-permit semantics.
// A Parker must be created with New, NewMetered, or NewFaulty and must not
// be copied after first use. Park and ParkTimeout may only be called by one
// goroutine at a time (the owner); Unpark may be called by any goroutine.
type Parker struct {
	ch chan struct{}
	m  *metrics.Handle
	f  *fault.Injector
}

// New returns a Parker with no permit available.
func New() *Parker {
	return &Parker{ch: make(chan struct{}, 1)}
}

// NewMetered returns a Parker that tallies slow-path parks and delivered
// unparks on h. A nil h is valid and equivalent to New.
func NewMetered(h *metrics.Handle) *Parker {
	return &Parker{ch: make(chan struct{}, 1), m: h}
}

// NewFaulty returns a metered Parker whose Wait is additionally subject to
// fault injection: spurious unparks (Wait returns Unparked without a
// permit) and timer skew on deadline waits. Nil h and nil f are both valid;
// NewFaulty(h, nil) is equivalent to NewMetered(h).
func NewFaulty(h *metrics.Handle, f *fault.Injector) *Parker {
	return &Parker{ch: make(chan struct{}, 1), m: h, f: f}
}

// Unpark makes the permit available, unblocking a current or future Park.
// Multiple Unparks coalesce into a single permit; only the Unpark that
// deposits the permit counts as a delivery.
func (p *Parker) Unpark() {
	select {
	case p.ch <- struct{}{}:
		p.m.Inc(metrics.Unparks)
	default:
	}
}

// Park blocks until the permit is available and consumes it.
func (p *Parker) Park() {
	select {
	case <-p.ch:
		return // permit already available: no deschedule
	default:
	}
	p.m.Inc(metrics.Parks)
	<-p.ch
}

// TryPark consumes the permit if one is immediately available and reports
// whether it did.
func (p *Parker) TryPark() bool {
	select {
	case <-p.ch:
		return true
	default:
		return false
	}
}

// timerPool recycles timers across ParkTimeout calls. Timed waits are on the
// hot path of poll/offer with patience, so avoiding a timer allocation per
// wait matters.
var timerPool = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	},
}

// ParkTimeout blocks until the permit is available or d elapses. It returns
// true if the permit was consumed, false on timeout. A non-positive d polls
// the permit without blocking.
func (p *Parker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		return p.TryPark()
	}
	// Fast path: permit already available.
	select {
	case <-p.ch:
		return true
	default:
	}
	p.m.Inc(metrics.Parks)
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	defer func() {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		timerPool.Put(t)
	}()
	select {
	case <-p.ch:
		return true
	case <-t.C:
		return false
	}
}

// ParkDeadline blocks until the permit is available or the deadline passes.
// A zero deadline means wait forever. It returns true if the permit was
// consumed.
func (p *Parker) ParkDeadline(deadline time.Time) bool {
	if deadline.IsZero() {
		p.Park()
		return true
	}
	return p.ParkTimeout(time.Until(deadline))
}

// ParkChan blocks until the permit is available or the given channel is
// closed/receives (typically ctx.Done()). It returns true if the permit was
// consumed, false if the channel fired first.
func (p *Parker) ParkChan(cancel <-chan struct{}) bool {
	if cancel == nil {
		p.Park()
		return true
	}
	select {
	case <-p.ch:
		return true
	default:
	}
	p.m.Inc(metrics.Parks)
	select {
	case <-p.ch:
		return true
	case <-cancel:
		return false
	}
}
