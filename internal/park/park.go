// Package park provides goroutine blocking with permit semantics, modeled on
// java.util.concurrent.locks.LockSupport, which the paper's implementations
// use to deschedule waiting threads.
//
// A Parker holds at most one permit. Unpark makes the permit available;
// Park consumes the permit, blocking until one is available. An Unpark that
// arrives before the corresponding Park is therefore never lost — exactly
// the property the synchronous queue algorithms rely on, because the
// fulfilling thread may call Unpark between the waiter's decision to block
// and the waiter actually blocking.
//
// The permit lives in a futex-style state word (empty → permit | parked) on
// an atomic.Uint32; the channel a parked goroutine actually blocks on is a
// pooled, resettable notifier attached only for the duration of a slow-path
// wait. The state word is the single source of truth: notifier tokens are
// hints ("look at the state word again"), so a stale token straying into a
// recycled notifier is at worst a spurious wakeup, which every caller must
// tolerate anyway (see Wait). This makes the steady Park/Unpark cycle — and
// a Parker embedded in a larger structure and prepared with Init —
// allocation-free.
package park

import (
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Parker states. The owner moves empty→parked (before blocking) and
// permit→empty (consuming); unparkers move empty→permit and parked→permit.
const (
	pEmpty  uint32 = iota // no permit, owner not blocked
	pPermit               // a permit is available
	pParked               // the owner is blocked (or committing to block)
)

// notifier is a pooled wake-up channel. It is boxed in a struct so the
// Parker can hold it in an atomic.Pointer (Go has no atomic channel type):
// the owner attaches it before publishing the parked state and detaches it
// after the wait, and unparkers load it only after winning the
// parked→permit transition, so the pointer itself needs no further
// synchronization discipline from callers.
type notifier struct {
	ch chan struct{}
}

// sigPool recycles notifiers across all Parkers. A notifier fetched from
// the pool may carry a stale token from a previous life (an unparker may
// send after the owner has already detached and recycled the notifier);
// Get-side draining plus state-word revalidation makes that harmless.
var sigPool = sync.Pool{
	New: func() any { return &notifier{ch: make(chan struct{}, 1)} },
}

// Parker blocks and unblocks a single goroutine with one-permit semantics.
// A Parker must be created with New, NewMetered, or NewFaulty — or embedded
// in an owning structure and prepared with Init — and must not be copied
// after first use. Park, ParkTimeout, and the other waiting methods may
// only be called by one goroutine at a time (the owner); Unpark may be
// called by any goroutine.
type Parker struct {
	state atomic.Uint32
	sig   atomic.Pointer[notifier]
	m     *metrics.Handle
	f     *fault.Injector
}

// New returns a Parker with no permit available.
func New() *Parker {
	return &Parker{}
}

// NewMetered returns a Parker that tallies slow-path parks and delivered
// unparks on h. A nil h is valid and equivalent to New.
func NewMetered(h *metrics.Handle) *Parker {
	return &Parker{m: h}
}

// NewFaulty returns a metered Parker whose waiting methods are additionally
// subject to fault injection: spurious unparks (a wait returns success
// without a permit) and timer skew on deadline waits. Nil h and nil f are
// both valid; NewFaulty(h, nil) is equivalent to NewMetered(h).
func NewFaulty(h *metrics.Handle, f *fault.Injector) *Parker {
	return &Parker{m: h, f: f}
}

// Init prepares an embedded (zero-value) Parker in place, equivalent to
// NewFaulty without the allocation. The owner must call it before
// publishing the Parker to potential unparkers; it must not be called on a
// Parker another goroutine may concurrently use.
func (p *Parker) Init(h *metrics.Handle, f *fault.Injector) {
	p.m = h
	p.f = f
	p.state.Store(pEmpty)
}

// Unpark makes the permit available, unblocking a current or future Park.
// Multiple Unparks coalesce into a single permit; only the Unpark that
// deposits the permit counts as a delivery.
func (p *Parker) Unpark() {
	for {
		switch p.state.Load() {
		case pPermit:
			return // coalesce
		case pEmpty:
			if p.state.CompareAndSwap(pEmpty, pPermit) {
				p.m.Inc(metrics.Unparks)
				return
			}
		case pParked:
			if p.state.CompareAndSwap(pParked, pPermit) {
				p.m.Inc(metrics.Unparks)
				// The owner attached its notifier before moving to
				// parked, so a non-nil load here is the channel it is
				// blocked on (or about to detach — then the token is a
				// harmless stray). Non-blocking: capacity 1 and tokens
				// coalesce like permits.
				if n := p.sig.Load(); n != nil {
					select {
					case n.ch <- struct{}{}:
					default:
					}
				}
				return
			}
		}
	}
}

// Park blocks until the permit is available and consumes it. Unlike the
// timed and cancelable waits, Park is exact even under fault injection: a
// return always consumed a real permit.
func (p *Parker) Park() {
	for p.wait(time.Time{}, nil, false) != Unparked {
	}
}

// TryPark consumes the permit if one is immediately available and reports
// whether it did.
func (p *Parker) TryPark() bool {
	return p.state.CompareAndSwap(pPermit, pEmpty)
}

// timerPool recycles timers across timed waits. Timed waits are on the hot
// path of poll/offer with patience, so avoiding a timer allocation per wait
// matters.
var timerPool = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	},
}

// ParkTimeout blocks until the permit is available or d elapses. It returns
// true if the permit was consumed, false on timeout. A non-positive d polls
// the permit without blocking. Under fault injection the wait may wake
// spuriously (returning true without a permit) or observe a skewed timer,
// so faulty callers must re-validate their wait condition.
func (p *Parker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		return p.TryPark()
	}
	return p.wait(time.Now().Add(d), nil, true) == Unparked
}

// ParkDeadline blocks until the permit is available or the deadline passes.
// A zero deadline means wait forever. It returns true if the permit was
// consumed (spuriously under fault injection, as with ParkTimeout).
func (p *Parker) ParkDeadline(deadline time.Time) bool {
	if deadline.IsZero() {
		p.Park()
		return true
	}
	return p.wait(deadline, nil, true) == Unparked
}

// ParkChan blocks until the permit is available or the given channel is
// closed/receives (typically ctx.Done()). It returns true if the permit was
// consumed, false if the channel fired first. Like ParkTimeout it honors
// the injector's spurious-unpark site, so context-cancel waits are
// chaos-testable: a faulty ParkChan may return true without a permit and
// callers must re-validate.
func (p *Parker) ParkChan(cancel <-chan struct{}) bool {
	if cancel == nil {
		p.Park()
		return true
	}
	return p.wait(time.Time{}, cancel, true) == Unparked
}
