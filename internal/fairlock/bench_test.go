package fairlock

import (
	"sync"
	"testing"
)

// BenchmarkUncontended compares the FIFO-fair lock's uncontended cost with
// sync.Mutex. The gap is small here; the interesting difference is under
// contention, where strict handoff forbids barging.
func BenchmarkUncontended(b *testing.B) {
	b.Run("fairlock", func(b *testing.B) {
		var m Mutex
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("sync.Mutex", func(b *testing.B) {
		var m sync.Mutex
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
}

// BenchmarkContended is the pileup the paper blames for the Java 5 fair
// queue's slowness: strict FIFO handoff forces a full deschedule/wake per
// ownership change once waiters queue up, while the barging sync.Mutex
// lets the running thread take the lock again.
func BenchmarkContended(b *testing.B) {
	run := func(b *testing.B, lock sync.Locker) {
		const workers = 4
		var wg sync.WaitGroup
		per := b.N / workers
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					lock.Lock()
					lock.Unlock() //nolint:staticcheck // intentional empty section
				}
			}()
		}
		wg.Wait()
	}
	b.Run("fairlock", func(b *testing.B) { run(b, &Mutex{}) })
	b.Run("sync.Mutex", func(b *testing.B) { run(b, &sync.Mutex{}) })
}
