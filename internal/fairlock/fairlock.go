// Package fairlock implements a FIFO-fair mutual exclusion lock.
//
// The Java SE 5.0 SynchronousQueue's fair mode uses a fair-mode entry lock
// to ensure FIFO wait ordering, and the paper identifies precisely this
// lock as the reason fair mode is so much slower: strict FIFO handoff
// causes pileups that block the threads that would fulfill waiting threads.
// Go's sync.Mutex is deliberately not strictly fair (it admits barging), so
// reproducing the Java 5 fair queue's performance profile requires this
// substrate.
package fairlock

import (
	"container/list"
	"sync"

	"synchq/internal/park"
)

// Mutex is a mutual exclusion lock that grants ownership to waiters in
// strict arrival order, handing the lock directly to the longest-waiting
// goroutine on unlock (no barging). The zero value is an unlocked Mutex.
// A Mutex must not be copied after first use.
type Mutex struct {
	mu      sync.Mutex
	locked  bool
	waiters list.List // of *park.Parker
}

// Lock acquires the lock, queueing behind all earlier arrivals.
func (m *Mutex) Lock() {
	m.mu.Lock()
	if !m.locked {
		m.locked = true
		m.mu.Unlock()
		return
	}
	p := park.New()
	m.waiters.PushBack(p)
	m.mu.Unlock()
	// Ownership is transferred directly by Unlock; when Park returns we
	// hold the lock.
	p.Park()
}

// TryLock acquires the lock only if it is free and no goroutine is queued.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.locked {
		m.locked = true
		return true
	}
	return false
}

// Unlock releases the lock, handing it to the longest-waiting goroutine if
// any. Unlocking an unheld Mutex panics, as with sync.Mutex.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	if !m.locked {
		m.mu.Unlock()
		panic("fairlock: unlock of unlocked mutex")
	}
	if e := m.waiters.Front(); e != nil {
		p := m.waiters.Remove(e).(*park.Parker)
		// locked stays true: ownership passes to p's goroutine.
		m.mu.Unlock()
		p.Unpark()
		return
	}
	m.locked = false
	m.mu.Unlock()
}
