package fairlock

import (
	"sync"
	"testing"
	"time"
)

func TestMutualExclusion(t *testing.T) {
	var m Mutex
	var counter int
	var wg sync.WaitGroup
	const workers, rounds = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}

func TestFIFOHandoff(t *testing.T) {
	var m Mutex
	m.Lock()
	const n = 6
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			m.Lock()
			order <- i
			m.Unlock()
		}()
		// Queue each waiter before launching the next.
		deadline := time.Now().Add(5 * time.Second)
		for {
			m.mu.Lock()
			queued := m.waiters.Len()
			m.mu.Unlock()
			if queued == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	m.Unlock()
	for i := 0; i < n; i++ {
		if got := <-order; got != i {
			t.Fatalf("lock granted to waiter %d at position %d (FIFO violated)", got, i)
		}
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free lock")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on a held lock")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	m.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestOwnershipTransfersDirectly(t *testing.T) {
	// After Unlock hands the lock to a waiter, a fresh TryLock must fail:
	// no barging past a queued waiter.
	var m Mutex
	m.Lock()
	entered := make(chan struct{})
	go func() {
		m.Lock()
		close(entered)
		time.Sleep(20 * time.Millisecond)
		m.Unlock()
	}()
	// Wait until the goroutine is queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		queued := m.waiters.Len()
		m.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	m.Unlock()
	<-entered
	if m.TryLock() {
		t.Fatal("TryLock barged while the lock was handed to a waiter")
	}
}
