# Tier-1 gate: everything `make check` runs must pass before a change
# lands. CI and the pre-merge driver run exactly this target.
.PHONY: check vet build test race bench-overhead stress

check: vet build test race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# Race pass in short mode over the concurrent internals: the stress-to-
# verify bridge, cancel storms, and metrics integration tests all shrink
# their iteration counts under -short so the race detector finishes fast.
race:
	go test -race -short ./internal/...

# Paired-handoff cost of the instrumentation layer, disabled vs enabled.
bench-overhead:
	go test -run - -bench MetricsOverhead -count 5 ./internal/core/

# Quick instrumented stress pass across every timed algorithm.
stress:
	go run ./cmd/sqstress -all -metrics -duration 2s
