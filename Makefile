# Tier-1 gate: everything `make check` runs must pass before a change
# lands. CI and the pre-merge driver run exactly this target.
.PHONY: check lint vet fmt build test race bench-overhead bench-smoke bench-all bench-scaling bench-batch bench-latency bench-executor stress soak soak-short

check: lint build test race bench-smoke bench-scaling bench-batch bench-latency bench-executor soak-short

# Static tier: vet plus a gofmt cleanliness check (gofmt -l prints the
# offending files; grep inverts that into a pass/fail).
lint: vet fmt

vet:
	go vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

# Race pass in short mode over the concurrent internals: the stress-to-
# verify bridge, cancel storms, and metrics integration tests all shrink
# their iteration counts under -short so the race detector finishes fast.
race:
	go test -race -short ./internal/...

# Paired-handoff cost of the instrumentation layer, disabled vs enabled.
bench-overhead:
	go test -run - -bench MetricsOverhead -count 5 ./internal/core/

# Allocation smoke gate: the budget test fails if a steady-state hand-off
# exceeds one allocation per operation per side, and the short benchmark
# run prints the allocs/op figures for eyeballing regressions.
bench-smoke:
	go test -run TestHandoffAllocBudget -count 1 ./internal/core/
	go test -run - -bench BenchmarkHandoffAllocs -benchtime 100x -benchmem ./internal/core/

# Scaling smoke gate: a short producer×consumer sweep reduced (via -cores)
# to the three headline series — plain fair queue, sharded+adaptive fair
# queue, segmented core — so CI gates quickly. The -gate check is coarse
# (no-regression, with a bounded-overhead fallback on single-CPU hosts —
# sharding has nothing to win there); the committed BENCH_scaling.json is
# regenerated over the full series set with the longer settings in its
# header (see bench-all).
bench-scaling:
	go run ./cmd/sqbench -figure scaling -transfers 3000 -repeats 2 -levels 1,4,8 \
		-cores queue,queue+shard+elim,seg,auto -quiet -gate

# Batched hand-off gate: k-item batch ops vs k single ops on the two gated
# cores (seg's multi-cell claim, transfer's burst splice), reduced to the
# baseline and headline batch sizes so CI gates quickly. The -gate floors
# are host-aware: ≥25% lower ns/item at k=8 on multicore hosts; on a
# single-CPU host the seg floor demands a clear win (its saving is
# park/unpark amortization, which survives, but the margin is scheduler
# noise) while the transfer floor only bounds the overhead (its saving is
# tail-CAS contention, which a single CPU cannot exhibit). The committed
# BENCH_batch.json is regenerated over the full sweep by bench-all.
bench-batch:
	go run ./cmd/sqbench -figure batch -transfers 3000 -repeats 2 -levels 1,8 \
		-cores seg,transfer -quiet -gate

# Regenerate every committed BENCH_*.json in one pass, each with the
# settings recorded in its committed header, printing per-figure headline
# deltas against the files being replaced. Run on a quiet host; commit the
# refreshed artifacts together with the delta summary in the PR body.
bench-all:
	go run ./cmd/sqbench -artifacts

# Latency-observability gate: single-pair hand-off with the histograms off
# vs on, interleaved repeats, min-of-repeats. The -gate check enforces the
# metrics-on overhead budget (10%, relaxed on single-CPU hosts where the
# baseline's own run-to-run spread exceeds the budget); the committed
# BENCH_latency.json is regenerated with `sqbench -figure latency -json`.
bench-latency:
	go run ./cmd/sqbench -figure latency -transfers 20000 -repeats 7 -quiet -gate

# Executor-tier gate: the bursty RPC-frontend macro-benchmark (steady leg,
# overload burst, graceful drain) over both production shapes. The -gate
# check is host-independent — the conservation ledger must balance exactly,
# both legs must complete work, the burst must actually shed or reject, and
# no worker may outlive the drain. The committed BENCH_executor.json is
# regenerated with `sqbench -figure executor -json`.
bench-executor:
	go run ./cmd/sqbench -figure executor -transfers 4000 -quiet -gate

# Quick instrumented stress pass across every timed algorithm.
stress:
	go run ./cmd/sqstress -all -metrics -duration 2s

# Short property-declared chaos leg, race-enabled: the whole core × option
# matrix runs the full scenario library at 300ms per scenario under
# deterministic fault injection, and the verdict table must be all-pass —
# every always-invariant holds, every sometimes-event fired, every fault
# site was reached. A failing row makes the exit nonzero and prints a
# copy-pasteable replay command; the fixed seed makes CI failures
# replayable verbatim on a laptop.
soak-short:
	go run -race ./cmd/sqstress -chaos -seed 1 -scenario-duration 300ms \
		-producers 4 -consumers 4 -procs 8

# Long chaos soak for hunting new schedules: 2s per scenario, fresh seed
# per run, JSON verdicts kept for the record. Replay any failing cell with
# the replay line it prints.
soak:
	go run -race ./cmd/sqstress -chaos -seed $$RANDOM -scenario-duration 2s \
		-producers 4 -consumers 4 -procs 8 -json soak-verdicts.json
