package synchq

import (
	"context"
	"time"

	"synchq/internal/core"
)

// Ticket is a pending reservation: the paper's first-class split of a
// partial operation into a request (TakeReserve/PutReserve, which
// linearizes the caller's place in line) and follow-ups (Listing 2 of the
// paper). An unsuccessful TryFollowup reads only the reservation's own
// node, so polling a ticket is contention-free — it never interferes with
// other threads' progress, unlike retrying a failed Offer/Poll, which
// contends on the structure's head every attempt.
//
// A Ticket belongs to the goroutine that created it and must not be used
// concurrently. Every ticket must be resolved exactly once: by a
// successful TryFollowup, by Await, or by Abort (collecting with
// TryFollowup if Abort reports the reservation was fulfilled first).
type Ticket[T any] struct {
	t core.Ticket[T]
}

// TryFollowup checks, without blocking, whether the reservation has been
// fulfilled. For a take ticket the received value is returned; for a put
// ticket ok simply reports that a consumer took the value. A successful
// follow-up spends the ticket.
func (t *Ticket[T]) TryFollowup() (T, bool) { return t.t.TryFollowup() }

// Await blocks until the reservation is fulfilled or ctx is done. On error
// the reservation has been aborted and the ticket is spent.
func (t *Ticket[T]) Await(ctx context.Context) (T, error) {
	deadline, _ := ctx.Deadline()
	v, st := t.t.Await(deadline, ctx.Done())
	switch st {
	case core.OK:
		return v, nil
	case core.Canceled:
		var zero T
		return zero, ctx.Err()
	default:
		var zero T
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		return zero, ErrTimeout
	}
}

// AwaitTimeout blocks until the reservation is fulfilled, waiting at most
// d. On false the reservation has been aborted and the ticket is spent.
func (t *Ticket[T]) AwaitTimeout(d time.Duration) (T, bool) {
	v, st := t.t.Await(time.Now().Add(d), nil)
	return v, st == core.OK
}

// Abort cancels the reservation. It returns false if a counterpart
// fulfilled the reservation first, in which case the outcome must still be
// collected with TryFollowup.
func (t *Ticket[T]) Abort() bool { return t.t.Abort() }

// TakeReserve registers a request for a value. If a producer is already
// waiting its value is returned immediately (ok true, nil ticket);
// otherwise a Ticket for the pending reservation is returned (ok false).
func (q *SynchronousQueue[T]) TakeReserve() (T, *Ticket[T], bool) {
	v, tk, ok := q.impl.ReserveTake()
	if tk == nil {
		return v, nil, ok
	}
	return v, &Ticket[T]{t: tk}, ok
}

// PutReserve offers v to a future consumer. If a consumer is already
// waiting, v is delivered immediately (ok true, nil ticket); otherwise a
// Ticket for the pending offer is returned (ok false).
func (q *SynchronousQueue[T]) PutReserve(v T) (*Ticket[T], bool) {
	tk, ok := q.impl.ReservePut(v)
	if tk == nil {
		return nil, ok
	}
	return &Ticket[T]{t: tk}, ok
}
