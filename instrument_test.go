package synchq_test

import (
	"sync"
	"testing"
	"time"

	"synchq"
)

// pairN drives n put/take pairs through q from two goroutines.
func pairN(t *testing.T, q synchq.TimedQueue[int], n int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Put(i)
		}
	}()
	for i := 0; i < n; i++ {
		q.Take()
	}
	wg.Wait()
}

func TestInstrumentSynchronousQueue(t *testing.T) {
	for _, fair := range []bool{true, false} {
		m := synchq.NewMetrics()
		q := synchq.New[int](synchq.Fair(fair), synchq.Instrument(m))
		if q.Metrics() != m {
			t.Fatal("Metrics() did not return the instrumented set")
		}
		pairN(t, q, 400)
		s := m.Stats()
		if got := s.Counters["fulfillments"]; got != 400 {
			t.Errorf("fair=%v: fulfillments = %d, want 400", fair, got)
		}
		h, ok := s.Latency["handoff"]
		if !ok || h.Count == 0 {
			t.Fatalf("fair=%v: no handoff latency recorded: %+v", fair, s.Latency)
		}
		// Both sides of a pair record their own arrival-to-pairing time, but
		// the latency layer samples 1-in-SampleRate operations, so the count
		// is bounded by the opportunity count rather than equal to it.
		if h.Count > 800 {
			t.Errorf("fair=%v: handoff count = %d, want ≤ 800 (both sides, sampled)", fair, h.Count)
		}
		if h.P50 < 0 || h.Max < h.P50 || h.P999 < h.P50 {
			t.Errorf("fair=%v: implausible percentiles: %+v", fair, h)
		}
	}
}

func TestInstrumentUninstrumentedIsNil(t *testing.T) {
	q := synchq.New[int]()
	if q.Metrics() != nil {
		t.Error("uninstrumented queue has non-nil Metrics()")
	}
	// Every method on a nil *Metrics is safe.
	var m *synchq.Metrics
	m.Reset()
	if s := m.Stats(); len(s.Counters) != 0 || len(s.Latency) != 0 {
		t.Errorf("nil Metrics Stats not empty: %+v", s)
	}
	if ss := m.ShardStats(); ss != nil {
		t.Errorf("nil Metrics ShardStats = %v, want nil", ss)
	}
	m.LatencyRecorder("handoff")(time.Microsecond)
}

func TestInstrumentSharded(t *testing.T) {
	m := synchq.NewMetrics()
	q := synchq.New[int](synchq.Sharded(4), synchq.Instrument(m))
	if q.Metrics() != m {
		t.Fatal("Metrics() did not return the instrumented set")
	}
	pairN(t, q, 400)

	ss := m.ShardStats()
	if len(ss) != q.Shards() {
		t.Fatalf("ShardStats has %d entries, want %d", len(ss), q.Shards())
	}
	var perShard int64
	for _, s := range ss {
		perShard += s.Counters["fulfillments"]
	}
	if perShard != 400 {
		t.Errorf("per-shard fulfillments sum = %d, want 400", perShard)
	}
	// The merged view must agree with the sum of the parts.
	if got := m.Stats().Counters["fulfillments"]; got != perShard {
		t.Errorf("merged fulfillments = %d, want %d", got, perShard)
	}
	if h := m.Stats().Latency["handoff"]; h.Count == 0 || h.Count > 800 {
		t.Errorf("merged handoff count = %d, want in (0, 800] (sampled)", h.Count)
	}
}

func TestInstrumentTransferQueue(t *testing.T) {
	m := synchq.NewMetrics()
	q := synchq.NewTransferQueue[int](synchq.Instrument(m))
	if q.Metrics() != m {
		t.Fatal("Metrics() did not return the instrumented set")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			q.Transfer(i)
		}
	}()
	for i := 0; i < 200; i++ {
		q.Take()
	}
	wg.Wait()
	s := m.Stats()
	if got := s.Counters["fulfillments"]; got != 200 {
		t.Errorf("fulfillments = %d, want 200", got)
	}
	if s.Latency["handoff"].Count == 0 {
		t.Error("no handoff latency recorded for transfers")
	}
}

func TestInstrumentExchanger(t *testing.T) {
	m := synchq.NewMetrics()
	x := synchq.NewExchangerSize[int](1, synchq.Instrument(m))
	if x.Metrics() != m {
		t.Fatal("Metrics() did not return the instrumented set")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			x.Exchange(i)
		}
	}()
	for i := 0; i < 200; i++ {
		x.Exchange(1000 + i)
	}
	wg.Wait()
	if h := m.Stats().Latency["handoff"]; h.Count == 0 {
		t.Error("no handoff latency recorded for exchanges")
	}
}

func TestInstrumentEliminatingQueue(t *testing.T) {
	m := synchq.NewMetrics()
	q := synchq.NewEliminatingQueue[int](
		synchq.Eliminating(1, 100*time.Millisecond),
		synchq.Instrument(m),
	)
	if q.Metrics() != m {
		t.Fatal("Metrics() did not return the instrumented set")
	}
	if q.Adaptive() {
		t.Error("Eliminating option built an adaptive arena")
	}
	if q.Fair() {
		t.Error("default backing queue should be unfair")
	}
	if q.Shards() != 1 {
		t.Errorf("Shards = %d, want 1", q.Shards())
	}
	pairN(t, q, 300)
	s := m.Stats()
	elim := s.Latency["elim"].Count
	fallback := s.Latency["fallback"].Count
	if elim == 0 && fallback == 0 {
		t.Errorf("no elim or fallback latency recorded: %+v", s.Latency)
	}
	// Every pair went one way or the other; elim counts both parties of an
	// arena hit, fallback counts each party that completed on the queue.
	// Under 1-in-SampleRate sampling a small hit count can legitimately
	// leave the histogram empty, so only a large hit count demands samples.
	if hits := s.Counters["elim-hits"]; hits >= 100 && elim == 0 {
		t.Errorf("elim-hits = %d but elim histogram empty", hits)
	}
}

func TestEliminatingDefaultIsAdaptive(t *testing.T) {
	q := synchq.NewEliminatingQueue[int]()
	if !q.Adaptive() {
		t.Error("NewEliminatingQueue without options should be adaptive")
	}
	if q.Metrics() != nil {
		t.Error("uninstrumented eliminating queue has non-nil Metrics()")
	}
	pairN(t, q, 20)
}

func TestDeprecatedEliminatingConstructors(t *testing.T) {
	// The deprecated wrappers must keep compiling and behaving as before.
	q1 := synchq.NewEliminating[int](synchq.NewUnfair[int](), 2, time.Microsecond)
	if q1.Adaptive() {
		t.Error("NewEliminating built an adaptive arena")
	}
	pairN(t, q1, 20)

	q2 := synchq.NewEliminatingAdaptive[int](synchq.NewFair[int]())
	if !q2.Adaptive() {
		t.Error("NewEliminatingAdaptive built a static arena")
	}
	if !q2.Fair() {
		t.Error("Fair() should reflect the wrapped queue")
	}
	pairN(t, q2, 20)

	// A wrapped instrumented queue keeps recording through the wrapper.
	m := synchq.NewMetrics()
	q3 := synchq.NewEliminatingAdaptive[int](synchq.New[int](synchq.Instrument(m)))
	if q3.Metrics() != m {
		t.Error("wrapper did not inherit the wrapped queue's Metrics")
	}
	pairN(t, q3, 20)
	if s := m.Stats(); s.Counters["fulfillments"] == 0 && s.Counters["elim-hits"] == 0 {
		t.Error("no events recorded through deprecated wrapper")
	}
}

func TestStatsMerge(t *testing.T) {
	m1, m2 := synchq.NewMetrics(), synchq.NewMetrics()
	q1 := synchq.New[int](synchq.Instrument(m1))
	q2 := synchq.New[int](synchq.Instrument(m2))
	pairN(t, q1, 10)
	pairN(t, q2, 15)

	s1, s2 := m1.Stats(), m2.Stats()
	merged := s1.Merge(s2)
	if got := merged.Counters["fulfillments"]; got != 25 {
		t.Errorf("merged fulfillments = %d, want 25", got)
	}
	// Sampled counts are not deterministic, but merging must preserve them.
	if got, want := merged.Latency["handoff"].Count, s1.Latency["handoff"].Count+s2.Latency["handoff"].Count; got != want {
		t.Errorf("merged handoff count = %d, want %d", got, want)
	}
	// Percentiles are recomputed from merged buckets, not copied.
	if merged.Latency["handoff"].Max < s1.Latency["handoff"].Max {
		t.Error("merged Max lost samples")
	}
}

func TestMetricsReset(t *testing.T) {
	m := synchq.NewMetrics()
	q := synchq.New[int](synchq.Sharded(2), synchq.Instrument(m))
	pairN(t, q, 10)
	if m.Stats().Counters["fulfillments"] == 0 {
		t.Fatal("no events before Reset")
	}
	m.Reset()
	s := m.Stats()
	if got := s.Counters["fulfillments"]; got != 0 {
		t.Errorf("fulfillments after Reset = %d, want 0", got)
	}
	if len(s.Latency) != 0 {
		t.Errorf("latency after Reset = %+v, want empty", s.Latency)
	}
}

func TestLatencyRecorder(t *testing.T) {
	m := synchq.NewMetrics()
	rec := m.LatencyRecorder("handoff")
	rec(time.Microsecond)
	rec(time.Millisecond)
	if got := m.Stats().Latency["handoff"].Count; got != 2 {
		t.Errorf("recorded count = %d, want 2", got)
	}
	// Unknown names are a silent no-op, not a panic.
	m.LatencyRecorder("no-such-histogram")(time.Second)
}
