package synchq

import (
	"context"
	"time"

	"synchq/internal/core"
)

// Batched operations. A k-item burst through the single-item API pays k
// full arrivals — k clock reads, k claims, k cache-line transfers. The
// batched entry points amortize that: the segmented core reserves a whole
// run of hand-off cells with one fetch-and-add, the sharded fabric
// dispatches a burst with one home draw and one summary sweep, and the
// transfer queue links a privately built chain of deposits with a single
// tail splice. On the linked dual structures, where every hand-off is one
// CAS-visible node, the batch entry points are a documented
// loop-with-single-arrival fallback — the same contract, without the
// amortization.
//
// The shared contract, on every core:
//
//   - An empty slice (or max <= 0) is a no-op.
//   - Items transfer in slice order. On fair (FIFO) unsharded cores the
//     order is preserved within the batch end to end; a sharded queue keeps
//     it only per shard ("per-shard FIFO, globally none").
//   - Status-reporting forms return the partial fill alongside the error:
//     items delivered before a timeout, cancellation, or close stay
//     delivered, and the count (or the filled buffer) says how many. After
//     a partial put of n items, items[n:] holds exactly the undelivered
//     items in order — that is the retry slice — and the contents of
//     items[:n] are unspecified (the segmented core compacts undelivered
//     values into the tail when a later run position outruns an earlier
//     abort).
//   - Conservation is exact: an item is either delivered to exactly one
//     consumer or still owned by the caller — a batch abort reclaims every
//     undelivered item and never strands a waiter.

// PutAll transfers every item to consumers, in order, waiting as long as
// necessary for each. It panics if the queue is closed (items handed off
// before the close stay delivered), mirroring Put.
func (q *SynchronousQueue[T]) PutAll(items []T) {
	if _, st := q.impl.PutBatch(items, time.Time{}, nil); st == core.Closed {
		panic(ErrClosed.Error())
	}
}

// PutAllContext transfers items in order until ctx is done. It returns the
// number delivered and nil when that is all of them; otherwise the partial
// fill and an error following the PutContext contract (ErrClosed,
// ErrTimeout, or the context's cancellation cause).
func (q *SynchronousQueue[T]) PutAllContext(ctx context.Context, items []T) (int, error) {
	deadline, _ := ctx.Deadline()
	n, st := q.impl.PutBatch(items, deadline, ctx.Done())
	if st == core.OK {
		return n, nil
	}
	return n, ctxError(ctx, st)
}

// TakeBatch receives up to max values: it waits as long as necessary for
// the first, then fills the rest from producers already committed, without
// waiting. It returns at least one value; it panics if the queue is closed
// before the first value arrives (values received when the close lands
// mid-fill are returned, not lost).
func (q *SynchronousQueue[T]) TakeBatch(max int) []T {
	buf, st := q.impl.TakeBatch(nil, max, time.Time{}, nil)
	if st == core.Closed && len(buf) == 0 {
		panic(ErrClosed.Error())
	}
	return buf
}

// TakeBatchContext receives up to max values, waiting for the first until
// ctx is done and filling the rest without waiting. On success the error is
// nil and the slice holds at least one value. ErrClosed may accompany a
// non-empty partial fill (the close landed mid-batch); timeout and
// cancellation errors always come empty-handed, since only the first value
// is ever waited for.
func (q *SynchronousQueue[T]) TakeBatchContext(ctx context.Context, max int) ([]T, error) {
	deadline, _ := ctx.Deadline()
	buf, st := q.impl.TakeBatch(nil, max, deadline, ctx.Done())
	if st == core.OK {
		return buf, nil
	}
	return buf, ctxError(ctx, st)
}

// DrainTo appends up to max immediately available values to buf without
// waiting — the bulk form of Poll: it claims producers already committed
// (and, when sharded, sweeps every flagged shard in one pass) and returns
// buf however many that yielded, zero included. A closed queue yields
// nothing; DrainTo never panics.
func (q *SynchronousQueue[T]) DrainTo(buf []T, max int) []T {
	buf, _ = q.impl.TakeBatch(buf, max, core.DeadlineFor(0), nil)
	return buf
}

// PutAll deposits items asynchronously as one burst: consumers already
// waiting are served in order from the front of the batch, and the
// remainder is buffered with a single tail splice — one linearization
// point for the whole burst instead of one per item. Like Put, it panics
// if the queue is closed (items handed to consumers before the close stay
// delivered, and nothing is buffered into a closed queue); use PutAllErr
// when racing a shutdown.
func (t *TransferQueue[T]) PutAll(items []T) {
	if _, st := t.tq.PutAll(items); st == core.Closed {
		panic(ErrClosed.Error())
	}
}

// PutAllErr is PutAll with the closed state reported as ErrClosed instead
// of a panic. It returns the number of items accepted (delivered or
// buffered) — on nil error that is len(items).
func (t *TransferQueue[T]) PutAllErr(items []T) (int, error) {
	n, st := t.tq.PutAll(items)
	if st == core.Closed {
		return n, ErrClosed
	}
	return n, nil
}

// TransferAllContext hands items to consumers synchronously, in order,
// under one shared context: every item waits for its own taker. It returns
// the count transferred and nil when that is all of items, otherwise the
// partial fill and an error following the TransferContext contract.
func (t *TransferQueue[T]) TransferAllContext(ctx context.Context, items []T) (int, error) {
	deadline, _ := ctx.Deadline()
	n, st := t.tq.TransferBatch(items, deadline, ctx.Done())
	if st == core.OK {
		return n, nil
	}
	return n, ctxError(ctx, st)
}

// TakeBatch receives up to max values: it waits as long as necessary for
// the first, then fills the rest from whatever is immediately available
// (buffered deposits and waiting synchronous producers, FIFO). Like Take,
// it keeps returning buffered deposits after Close and panics only once a
// closed queue's buffer is empty before the first value.
func (t *TransferQueue[T]) TakeBatch(max int) []T {
	buf, st := t.tq.TakeBatch(nil, max, time.Time{}, nil)
	if st == core.Closed && len(buf) == 0 {
		panic(ErrClosed.Error())
	}
	return buf
}

// TakeBatchContext receives up to max values, waiting for the first until
// ctx is done. The error contract matches the synchronous queue's
// TakeBatchContext, with the transfer queue's closed-drain guarantee:
// buffered deposits keep arriving after Close, and ErrClosed (possibly
// alongside a partial fill) means the buffer truly ran dry.
func (t *TransferQueue[T]) TakeBatchContext(ctx context.Context, max int) ([]T, error) {
	deadline, _ := ctx.Deadline()
	buf, st := t.tq.TakeBatch(nil, max, deadline, ctx.Done())
	if st == core.OK {
		return buf, nil
	}
	return buf, ctxError(ctx, st)
}

// DrainTo appends up to max immediately available values to buf without
// waiting — the bounded form of Drain. The error is nil when the queue
// simply had nothing more to give, and ErrClosed only once a closed
// queue's buffered deposits have all been drained: an accepted deposit is
// a promise the close keeps, so DrainTo never reports ErrClosed while one
// remains (the same contract as Take and Poll).
func (t *TransferQueue[T]) DrainTo(buf []T, max int) ([]T, error) {
	buf, st := t.tq.DrainTo(buf, max)
	if st == core.Closed {
		return buf, ErrClosed
	}
	return buf, nil
}
