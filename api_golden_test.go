package synchq

// Public-API golden test: pins the exported surface of package synchq so
// that accidental additions, removals or renames show up as a test diff
// rather than a silent compatibility break. The golden file lists one
// exported declaration per line — functions and methods with full
// signatures, types, and exported struct fields / consts / vars — sorted.
//
// To regenerate after an intentional API change:
//
//	UPDATE_API_GOLDEN=1 go test -run TestPublicAPIGolden .
//
// and review the diff in testdata/api.golden like any other code change.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func exprString(fset *token.FileSet, e ast.Expr) string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	printer.Fprint(&b, fset, e)
	// Collapse any multi-line literals (e.g. interface{ ... }) so each
	// declaration stays one golden line.
	return strings.Join(strings.Fields(b.String()), " ")
}

func fieldListString(fset *token.FileSet, fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		typ := exprString(fset, f.Type)
		if len(f.Names) == 0 {
			parts = append(parts, typ)
			continue
		}
		for _, n := range f.Names {
			parts = append(parts, n.Name+" "+typ)
		}
	}
	return strings.Join(parts, ", ")
}

// publicAPI renders the exported surface of the package rooted at dir.
func publicAPI(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse package: %v", err)
	}
	pkg, ok := pkgs["synchq"]
	if !ok {
		t.Fatalf("package synchq not found in %s (got %v)", dir, pkgs)
	}

	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil {
					rt := exprString(fset, d.Recv.List[0].Type)
					// Skip methods on unexported receivers.
					base := strings.TrimLeft(rt, "*")
					if base != "" && !ast.IsExported(strings.SplitN(base, "[", 2)[0]) {
						continue
					}
					recv = "(" + rt + ") "
				}
				tparams := ""
				if d.Recv == nil && d.Type.TypeParams != nil {
					tparams = "[" + fieldListString(fset, d.Type.TypeParams) + "]"
				}
				results := fieldListString(fset, d.Type.Results)
				if results != "" {
					if d.Type.Results != nil && (len(d.Type.Results.List) > 1 || len(d.Type.Results.List[0].Names) > 0) {
						results = " (" + results + ")"
					} else {
						results = " " + results
					}
				}
				add("func %s%s%s(%s)%s", recv, d.Name.Name, tparams,
					fieldListString(fset, d.Type.Params), results)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						tparams := ""
						if s.TypeParams != nil {
							tparams = "[" + fieldListString(fset, s.TypeParams) + "]"
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							add("type %s%s struct", s.Name.Name, tparams)
							for _, f := range st.Fields.List {
								typ := exprString(fset, f.Type)
								tag := ""
								if f.Tag != nil {
									tag = " " + f.Tag.Value
								}
								if len(f.Names) == 0 {
									if ast.IsExported(strings.TrimLeft(typ, "*")) {
										add("type %s%s struct: %s (embedded)%s", s.Name.Name, tparams, typ, tag)
									}
									continue
								}
								for _, n := range f.Names {
									if n.IsExported() {
										add("type %s%s struct: %s %s%s", s.Name.Name, tparams, n.Name, typ, tag)
									}
								}
							}
						} else {
							add("type %s%s %s", s.Name.Name, tparams, exprString(fset, s.Type))
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							typ := exprString(fset, s.Type)
							if typ != "" {
								typ = " " + typ
							}
							add("%s %s%s", kind, n.Name, typ)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestPublicAPIGolden(t *testing.T) {
	lines := publicAPI(t, ".")
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "api.golden")

	if os.Getenv("UPDATE_API_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d declarations)", golden, len(lines))
		return
	}

	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s: %v (run UPDATE_API_GOLDEN=1 go test -run TestPublicAPIGolden . to create it)", golden, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := make(map[string]bool, len(lines))
	for _, l := range lines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSuffix(want, "\n"), "\n") {
		wantSet[l] = true
	}
	for l := range wantSet {
		if !gotSet[l] {
			t.Errorf("exported API removed or changed:\n  - %s", l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			t.Errorf("exported API added:\n  + %s", l)
		}
	}
	t.Error("public API differs from testdata/api.golden; if intentional, regenerate with UPDATE_API_GOLDEN=1 go test -run TestPublicAPIGolden . and review the diff")
}
