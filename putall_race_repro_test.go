package synchq

import (
	"context"
	"testing"
	"time"
)

// Taker A waits; taker B arrives after (node at tail), times out — the
// dual-queue defers unlinking a tail-canceled node. PutAll then walks:
// fulfill A, hit B's dead node, and must still deposit the remainder.
func TestPutAllDeadTailNode(t *testing.T) {
	q := NewTransferQueue[int]()
	gotA := make(chan int, 1)
	go func() {
		gotA <- q.Take()
	}()
	time.Sleep(50 * time.Millisecond) // A parked at head

	ctxB, cancelB := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelB()
	if _, err := q.TakeContext(ctxB); err == nil {
		t.Fatal("B should time out")
	}
	time.Sleep(20 * time.Millisecond) // B's canceled node left at tail

	n, err := q.PutAllErr([]int{10, 20, 30, 40, 50})
	if err != nil || n != 5 {
		t.Fatalf("PutAllErr = %d, %v", n, err)
	}
	a := <-gotA
	buf, _ := q.DrainTo(nil, 10)
	if a != 10 {
		t.Fatalf("A got %d, want 10", a)
	}
	if len(buf) != 4 {
		t.Fatalf("conservation violated: accepted 5, A got 1, drained %d (%v) — lost %d items",
			len(buf), buf, 4-len(buf))
	}
}
