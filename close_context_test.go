package synchq_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"synchq"
)

// These tests pin the public error contract: deadline expiry is ErrTimeout,
// external cancellation is the context's cause (context.Canceled for a
// plain cancel, a custom cause for CancelCauseFunc), and shutdown is
// ErrClosed — three distinct, errors.Is-distinguishable outcomes.

func newBoth(t *testing.T) map[string]*synchq.SynchronousQueue[int] {
	t.Helper()
	return map[string]*synchq.SynchronousQueue[int]{
		"fair":   synchq.NewFair[int](),
		"unfair": synchq.NewUnfair[int](),
	}
}

func TestContextDeadlineIsErrTimeout(t *testing.T) {
	for name, q := range newBoth(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			if err := q.PutContext(ctx, 1); !errors.Is(err, synchq.ErrTimeout) {
				t.Errorf("PutContext after deadline: err = %v, want ErrTimeout", err)
			}
			ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel2()
			if _, err := q.TakeContext(ctx2); !errors.Is(err, synchq.ErrTimeout) {
				t.Errorf("TakeContext after deadline: err = %v, want ErrTimeout", err)
			}
		})
	}
}

func TestContextCancelIsCanceledNotTimeout(t *testing.T) {
	for name, q := range newBoth(t) {
		t.Run(name, func(t *testing.T) {
			// A deadline far in the future plus an explicit cancel: the
			// error must say "canceled", never "timed out".
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			errc := make(chan error, 1)
			go func() { errc <- q.PutContext(ctx, 1) }()
			waitBlocked(t, q.HasWaitingProducer)
			cancel()
			err := <-errc
			if !errors.Is(err, context.Canceled) {
				t.Errorf("canceled PutContext: err = %v, want context.Canceled", err)
			}
			if errors.Is(err, synchq.ErrTimeout) {
				t.Errorf("canceled PutContext misreported as ErrTimeout")
			}

			ctx2, cancel2 := context.WithCancel(context.Background())
			errc2 := make(chan error, 1)
			go func() {
				_, err := q.TakeContext(ctx2)
				errc2 <- err
			}()
			waitBlocked(t, q.HasWaitingConsumer)
			cancel2()
			if err := <-errc2; !errors.Is(err, context.Canceled) {
				t.Errorf("canceled TakeContext: err = %v, want context.Canceled", err)
			}
		})
	}
}

func TestContextCancelCausePropagates(t *testing.T) {
	cause := errors.New("load shedding")
	for name, q := range newBoth(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancelCause(context.Background())
			errc := make(chan error, 1)
			go func() { errc <- q.PutContext(ctx, 1) }()
			waitBlocked(t, q.HasWaitingProducer)
			cancel(cause)
			if err := <-errc; !errors.Is(err, cause) {
				t.Errorf("PutContext with cancel cause: err = %v, want %v", err, cause)
			}
		})
	}
}

func TestCloseUnblocksContextOps(t *testing.T) {
	for name, q := range newBoth(t) {
		t.Run(name, func(t *testing.T) {
			errc := make(chan error, 2)
			go func() { errc <- q.PutContext(context.Background(), 1) }()
			go func() {
				_, err := q.TakeContext(context.Background())
				errc <- err
			}()
			// Both can pair with each other; retry until both are parked
			// waiters, or accept that one pair completed and re-spawn.
			// Simplest robust form: wait until Close is the only way out.
			time.Sleep(10 * time.Millisecond)
			q.Close()
			for i := 0; i < 2; i++ {
				err := <-errc
				// One of the two may have paired with the other before the
				// close; the rest must see ErrClosed.
				if err != nil && !errors.Is(err, synchq.ErrClosed) {
					t.Errorf("after Close: err = %v, want nil (paired) or ErrClosed", err)
				}
			}
			if !q.Closed() {
				t.Error("Closed() = false after Close")
			}
			if err := q.PutContext(context.Background(), 2); !errors.Is(err, synchq.ErrClosed) {
				t.Errorf("PutContext on closed queue: err = %v, want ErrClosed", err)
			}
			if _, err := q.TakeContext(context.Background()); !errors.Is(err, synchq.ErrClosed) {
				t.Errorf("TakeContext on closed queue: err = %v, want ErrClosed", err)
			}
			if q.Offer(3) {
				t.Error("Offer succeeded on closed queue")
			}
			if _, ok := q.Poll(); ok {
				t.Error("Poll succeeded on closed queue")
			}
		})
	}
}

func TestCloseDemandOpsPanic(t *testing.T) {
	q := synchq.NewUnfair[int]()
	q.Close()
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"Put", func() { q.Put(1) }},
		{"Take", func() { q.Take() }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on closed queue did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestTransferQueueCloseAndDrainPublic(t *testing.T) {
	tq := synchq.NewTransferQueue[int]()
	for i := 0; i < 5; i++ {
		tq.Put(i)
	}
	taken := tq.Take()
	tq.Close()

	if err := tq.PutErr(99); !errors.Is(err, synchq.ErrClosed) {
		t.Errorf("PutErr on closed queue: err = %v, want ErrClosed", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put on closed transfer queue did not panic")
			}
		}()
		tq.Put(100)
	}()

	// An accepted deposit is a promise the close keeps: like Take and
	// Poll, TakeContext still returns buffered elements after Close.
	viaCtx, err := tq.TakeContext(context.Background())
	if err != nil {
		t.Fatalf("TakeContext on closed queue with buffered deposits: err = %v, want a value", err)
	}

	drained := tq.Drain()
	if len(drained) != 3 {
		t.Fatalf("Drain returned %d elements (%v), want the 3 undelivered deposits", len(drained), drained)
	}
	seen := map[int]bool{taken: true, viaCtx: true}
	for _, v := range drained {
		if seen[v] {
			t.Errorf("value %d surfaced twice", v)
		}
		seen[v] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Errorf("deposit %d lost by close", i)
		}
	}

	if err := tq.TransferContext(context.Background(), 7); !errors.Is(err, synchq.ErrClosed) {
		t.Errorf("TransferContext on closed queue: err = %v, want ErrClosed", err)
	}
	if _, err := tq.TakeContext(context.Background()); !errors.Is(err, synchq.ErrClosed) {
		t.Errorf("TakeContext on closed drained queue: err = %v, want ErrClosed", err)
	}
}

// TestCloseConcurrentWithTransfers closes the public queue mid-storm: no
// goroutine may hang, and completed hand-offs must balance.
func TestCloseConcurrentWithTransfers(t *testing.T) {
	q := synchq.NewFair[int]()
	var put, taken int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; ; v++ {
				if err := q.PutContext(context.Background(), v); err != nil {
					return
				}
				mu.Lock()
				put++
				mu.Unlock()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := q.TakeContext(context.Background()); err != nil {
					return
				}
				mu.Lock()
				taken++
				mu.Unlock()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()
	if put != taken {
		t.Errorf("close tore a hand-off: %d puts succeeded but %d takes", put, taken)
	}
	if put == 0 {
		t.Error("no transfers completed before close")
	}
}

// waitBlocked polls cond until true or a generous deadline.
func waitBlocked(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("goroutine did not block in time")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
