package synchq

import (
	"context"
	"testing"
	"time"

	"synchq/internal/core"
)

// These tests pin the attempt-first contract of the context operations:
// PutContext/TakeContext (and TransferContext) must not pre-screen on
// Closed() — they hand the attempt to the core and report whatever it
// observed. A Closed() probe is inherently stale (the answer can change
// before the attempt starts), and pre-screening it made the context
// operations spuriously reject hand-offs that the core would have
// completed — e.g. an elimination-arena pairing racing a shutdown, or a
// buffered element a closing TransferQueue still owes its consumers.

// stubImpl reports Closed()==true while still completing transfers — the
// shape of a queue mid-shutdown whose in-flight hand-offs must win. Only
// the methods the context operations touch do anything.
type stubImpl[T any] struct {
	v    T
	puts int
}

func (f *stubImpl[T]) Put(v T)        { f.v = v }
func (f *stubImpl[T]) Take() T        { return f.v }
func (f *stubImpl[T]) Offer(v T) bool { return false }
func (f *stubImpl[T]) OfferTimeout(v T, d time.Duration) bool {
	return false
}
func (f *stubImpl[T]) Poll() (T, bool) { var z T; return z, false }
func (f *stubImpl[T]) PollTimeout(d time.Duration) (T, bool) {
	var z T
	return z, false
}
func (f *stubImpl[T]) PutDeadline(v T, _ time.Time, _ <-chan struct{}) core.Status {
	f.v = v
	f.puts++
	return core.OK
}
func (f *stubImpl[T]) TakeDeadline(_ time.Time, _ <-chan struct{}) (T, core.Status) {
	return f.v, core.OK
}
func (f *stubImpl[T]) HasWaitingConsumer() bool               { return false }
func (f *stubImpl[T]) HasWaitingProducer() bool               { return false }
func (f *stubImpl[T]) IsEmpty() bool                          { return true }
func (f *stubImpl[T]) ReserveTake() (T, core.Ticket[T], bool) { var z T; return z, nil, false }
func (f *stubImpl[T]) ReservePut(v T) (core.Ticket[T], bool)  { return nil, false }
func (f *stubImpl[T]) PutBatch(items []T, _ time.Time, _ <-chan struct{}) (int, core.Status) {
	for _, v := range items {
		f.v = v
		f.puts++
	}
	return len(items), core.OK
}
func (f *stubImpl[T]) TakeBatch(buf []T, max int, _ time.Time, _ <-chan struct{}) ([]T, core.Status) {
	if max > 0 {
		buf = append(buf, f.v)
	}
	return buf, core.OK
}
func (f *stubImpl[T]) Close()       {}
func (f *stubImpl[T]) Closed() bool { return true }

// TestContextOpsAttemptFirst feeds the context operations an impl that
// claims to be closed yet completes every attempt: the operations must
// report the attempt's success, proving they no longer pre-screen on the
// stale Closed() answer. (Before the fix, both returned ErrClosed without
// ever reaching the core.)
func TestContextOpsAttemptFirst(t *testing.T) {
	f := &stubImpl[int]{}
	q := &SynchronousQueue[int]{impl: f}

	if err := q.PutContext(context.Background(), 7); err != nil {
		t.Fatalf("PutContext pre-screened on Closed(): err = %v, want nil", err)
	}
	if f.puts != 1 {
		t.Fatalf("PutContext did not reach the core (puts = %d)", f.puts)
	}
	v, err := q.TakeContext(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("TakeContext = (%d, %v), want (7, nil)", v, err)
	}
}

// TestEliminationWinsOverClose is the end-to-end form: on a closed
// EliminatingQueue, a PutContext and a TakeContext that meet in the
// elimination arena must still complete — the arena pairing never touches
// the closed backing queue, and the attempt-first contract means nobody
// pre-rejects it. A single-slot arena with generous patience makes the
// meeting deterministic.
func TestEliminationWinsOverClose(t *testing.T) {
	q := NewEliminatingQueue[int](Eliminating(1, 500*time.Millisecond))
	q.Close()

	done := make(chan error, 1)
	go func() { done <- q.PutContext(context.Background(), 42) }()

	v, err := q.TakeContext(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("TakeContext on closed eliminating queue = (%d, %v), want arena hit (42, nil)", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("PutContext on closed eliminating queue = %v, want arena hit (nil)", err)
	}

	// Without a partner the arena attempt expires and the backing queue's
	// closed state is still reported faithfully.
	if err := q.PutContext(context.Background(), 1); err != ErrClosed {
		t.Fatalf("unpaired PutContext on closed queue = %v, want ErrClosed", err)
	}
}
