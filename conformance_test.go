package synchq_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq"
)

// Conformance suite: every implementation reachable through the public API
// must satisfy the synchronous hand-off contract. Queue implementations
// get the demand contract; TimedQueue implementations additionally get the
// polar/timed contract.

func demandImpls() map[string]func() synchq.Queue[int] {
	return map[string]func() synchq.Queue[int]{
		"fair":        func() synchq.Queue[int] { return synchq.NewFair[int]() },
		"unfair":      func() synchq.Queue[int] { return synchq.NewUnfair[int]() },
		"naive":       func() synchq.Queue[int] { return synchq.NewNaive[int]() },
		"hanson":      func() synchq.Queue[int] { return synchq.NewHanson[int]() },
		"hansonfast":  func() synchq.Queue[int] { return synchq.NewHansonFast[int]() },
		"java5fair":   func() synchq.Queue[int] { return synchq.NewJava5Fair[int]() },
		"java5unfair": func() synchq.Queue[int] { return synchq.NewJava5Unfair[int]() },
		"gochannel":   func() synchq.Queue[int] { return synchq.NewGoChannel[int]() },
		"eliminating": func() synchq.Queue[int] {
			return synchq.NewEliminating(synchq.NewUnfair[int](), 2, 20*time.Microsecond)
		},
		"transfer":  func() synchq.Queue[int] { return transferAsQueue{synchq.NewTransferQueue[int]()} },
		"segmented": func() synchq.Queue[int] { return synchq.New[int](synchq.Segmented()) },
		"segmented+sharded": func() synchq.Queue[int] {
			return synchq.New[int](synchq.Segmented(), synchq.Sharded(4))
		},
	}
}

// transferAsQueue narrows TransferQueue to the demand contract using its
// synchronous transfer mode.
type transferAsQueue struct{ q *synchq.TransferQueue[int] }

func (t transferAsQueue) Put(v int) { t.q.Transfer(v) }
func (t transferAsQueue) Take() int { return t.q.Take() }

func timedImpls() map[string]func() synchq.TimedQueue[int] {
	return map[string]func() synchq.TimedQueue[int]{
		"fair":        func() synchq.TimedQueue[int] { return synchq.NewFair[int]() },
		"unfair":      func() synchq.TimedQueue[int] { return synchq.NewUnfair[int]() },
		"java5fair":   func() synchq.TimedQueue[int] { return synchq.NewJava5Fair[int]() },
		"java5unfair": func() synchq.TimedQueue[int] { return synchq.NewJava5Unfair[int]() },
		"gochannel":   func() synchq.TimedQueue[int] { return synchq.NewGoChannel[int]() },
		"eliminating": func() synchq.TimedQueue[int] {
			return synchq.NewEliminating(synchq.NewUnfair[int](), 2, 20*time.Microsecond)
		},
		"transfer":  func() synchq.TimedQueue[int] { return synchq.NewTransferQueue[int]() },
		"segmented": func() synchq.TimedQueue[int] { return synchq.New[int](synchq.Segmented()) },
		"segmented+sharded": func() synchq.TimedQueue[int] {
			return synchq.New[int](synchq.Segmented(), synchq.Sharded(4))
		},
	}
}

func TestConformanceDemandContract(t *testing.T) {
	for name, mk := range demandImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Run("handshake", func(t *testing.T) {
				q := mk()
				got := make(chan int)
				go func() { got <- q.Take() }()
				q.Put(1)
				if v := <-got; v != 1 {
					t.Fatalf("Take = %d, want 1", v)
				}
			})
			t.Run("put-waits", func(t *testing.T) {
				q := mk()
				var returned atomic.Bool
				go func() {
					q.Put(2)
					returned.Store(true)
				}()
				time.Sleep(15 * time.Millisecond)
				if returned.Load() {
					t.Fatal("Put returned with no consumer")
				}
				if v := q.Take(); v != 2 {
					t.Fatalf("Take = %d, want 2", v)
				}
			})
			t.Run("conservation", func(t *testing.T) {
				q := mk()
				const workers, per = 3, 200
				var wg sync.WaitGroup
				var sum atomic.Int64
				for w := 0; w < workers; w++ {
					wg.Add(2)
					base := w * per
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							q.Put(base + i)
						}
					}()
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							sum.Add(int64(q.Take()))
						}
					}()
				}
				wg.Wait()
				total := int64(workers * per)
				if want := total * (total - 1) / 2; sum.Load() != want {
					t.Fatalf("sum = %d, want %d", sum.Load(), want)
				}
			})
		})
	}
}

func TestConformanceTimedContract(t *testing.T) {
	for name, mk := range timedImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk()
			if q.Offer(1) {
				t.Fatal("Offer succeeded with no consumer")
			}
			if _, ok := q.Poll(); ok {
				t.Fatal("Poll succeeded with no producer")
			}
			if q.OfferTimeout(1, 5*time.Millisecond) {
				t.Fatal("OfferTimeout succeeded with no consumer")
			}
			if _, ok := q.PollTimeout(5 * time.Millisecond); ok {
				t.Fatal("PollTimeout succeeded with no producer")
			}
			// Patience rewarded on both sides.
			go func() {
				time.Sleep(5 * time.Millisecond)
				q.Put(7)
			}()
			if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 7 {
				t.Fatalf("PollTimeout = (%d,%v), want (7,true)", v, ok)
			}
			done := make(chan int)
			go func() { done <- q.Take() }()
			if !q.OfferTimeout(8, 5*time.Second) {
				t.Fatal("OfferTimeout failed with a consumer en route")
			}
			if v := <-done; v != 8 {
				t.Fatalf("Take = %d, want 8", v)
			}
		})
	}
}

func TestConformanceTimedRace(t *testing.T) {
	// Producer and consumer with equal tiny patience must always agree.
	for name, mk := range timedImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < 100; i++ {
				got := make(chan bool, 1)
				go func() {
					_, ok := q.PollTimeout(500 * time.Microsecond)
					got <- ok
				}()
				sent := q.OfferTimeout(i, 500*time.Microsecond)
				received := <-got
				if sent != received {
					t.Fatalf("iteration %d: sent=%v received=%v", i, sent, received)
				}
			}
			// Whatever happened, nothing may be left behind.
			if v, ok := q.Poll(); ok {
				t.Fatalf("straggler value %d after balanced timed race", v)
			}
		})
	}
}

// batchAPI narrows every batch-capable surface (SynchronousQueue with any
// option set, TransferQueue, EliminatingQueue) to one shape so a single
// contract suite runs over all of them.
type batchAPI struct {
	putAllCtx    func(ctx context.Context, items []int) (int, error)
	takeBatchCtx func(ctx context.Context, max int) ([]int, error)
	drainTo      func(buf []int, max int) []int
	take         func() int
	put          func(v int) // synchronous single put, for committed-producer setup
	close        func()
	// fifo marks cores whose in-batch FIFO holds end to end (fair and
	// unsharded); a sharded queue keeps it only per shard.
	fifo bool
}

func batchImpls() map[string]func() batchAPI {
	mkSQ := func(fifo bool, opts ...synchq.Option) func() batchAPI {
		return func() batchAPI {
			q := synchq.New[int](opts...)
			return batchAPI{
				putAllCtx:    q.PutAllContext,
				takeBatchCtx: q.TakeBatchContext,
				drainTo:      q.DrainTo,
				take:         q.Take,
				put:          q.Put,
				close:        q.Close,
				fifo:         fifo,
			}
		}
	}
	return map[string]func() batchAPI{
		"fair":              mkSQ(true, synchq.Fair(true)),
		"unfair":            mkSQ(false),
		"segmented":         mkSQ(true, synchq.Segmented()),
		"fair+sharded":      mkSQ(false, synchq.Fair(true), synchq.Sharded(4)),
		"unfair+sharded":    mkSQ(false, synchq.Sharded(4)),
		"segmented+sharded": mkSQ(false, synchq.Segmented(), synchq.Sharded(4)),
		"eliminating": func() batchAPI {
			e := synchq.NewEliminating(synchq.NewFair[int](), 2, 20*time.Microsecond)
			return batchAPI{
				putAllCtx:    e.PutAllContext,
				takeBatchCtx: e.TakeBatchContext,
				drainTo:      e.DrainTo,
				take:         e.Take,
				put:          e.Put,
				close:        e.Close,
				fifo:         true,
			}
		},
		"transfer": func() batchAPI {
			q := synchq.NewTransferQueue[int]()
			return batchAPI{
				putAllCtx:    q.TransferAllContext,
				takeBatchCtx: q.TakeBatchContext,
				drainTo: func(buf []int, max int) []int {
					buf, _ = q.DrainTo(buf, max)
					return buf
				},
				take:  q.Take,
				put:   q.Transfer,
				close: q.Close,
				fifo:  true,
			}
		},
	}
}

// TestConformanceBatchContract runs the shared batch contract over every
// batch-capable core × option combination: empty-slice and max=0 no-ops,
// partial fill on timeout and on cancellation, ErrClosed with the partial
// fill preserved, bulk drain of committed producers, and in-batch FIFO on
// the cores that promise it.
func TestConformanceBatchContract(t *testing.T) {
	for name, mk := range batchImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Run("empty-noop", func(t *testing.T) {
				q := mk()
				// No consumer anywhere: these must return immediately.
				if n, err := q.putAllCtx(context.Background(), nil); n != 0 || err != nil {
					t.Fatalf("PutAll(nil) = (%d, %v), want (0, nil)", n, err)
				}
				if buf, err := q.takeBatchCtx(context.Background(), 0); len(buf) != 0 || err != nil {
					t.Fatalf("TakeBatch(max=0) = (%v, %v), want ([], nil)", buf, err)
				}
				if buf := q.drainTo(nil, 5); len(buf) != 0 {
					t.Fatalf("DrainTo on empty queue = %v, want []", buf)
				}
			})
			t.Run("partial-fill-timeout", func(t *testing.T) {
				q := mk()
				got := make(chan int, 1)
				go func() { got <- q.take() }()
				ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
				defer cancel()
				n, err := q.putAllCtx(ctx, []int{1, 2, 3})
				if n != 1 || !errors.Is(err, synchq.ErrTimeout) {
					t.Fatalf("PutAllContext = (%d, %v), want (1, ErrTimeout)", n, err)
				}
				if v := <-got; v != 1 {
					t.Fatalf("consumer got %d, want the batch's first item 1", v)
				}
			})
			t.Run("partial-fill-cancel", func(t *testing.T) {
				q := mk()
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				n, err := q.putAllCtx(ctx, []int{1, 2, 3})
				if n != 0 || !errors.Is(err, context.Canceled) {
					t.Fatalf("PutAllContext on canceled ctx = (%d, %v), want (0, context.Canceled)", n, err)
				}
			})
			t.Run("closed-keeps-partial-fill", func(t *testing.T) {
				q := mk()
				res := make(chan int, 1)
				errs := make(chan error, 1)
				go func() {
					n, err := q.putAllCtx(context.Background(), []int{1, 2, 3})
					res <- n
					errs <- err
				}()
				if v := q.take(); v != 1 {
					t.Fatalf("Take = %d, want 1", v)
				}
				q.close()
				if n, err := <-res, <-errs; n != 1 || !errors.Is(err, synchq.ErrClosed) {
					t.Fatalf("PutAllContext across Close = (%d, %v), want (1, ErrClosed)", n, err)
				}
				// And the take side: a closed empty queue reports ErrClosed
				// with nothing taken.
				if buf, err := q.takeBatchCtx(context.Background(), 2); len(buf) != 0 || !errors.Is(err, synchq.ErrClosed) {
					t.Fatalf("TakeBatchContext on closed = (%v, %v), want ([], ErrClosed)", buf, err)
				}
			})
			t.Run("drainto-committed-producers", func(t *testing.T) {
				q := mk()
				var wg sync.WaitGroup
				for v := 1; v <= 3; v++ {
					wg.Add(1)
					go func(v int) {
						defer wg.Done()
						q.put(v)
					}(v)
				}
				var buf []int
				deadline := time.Now().Add(5 * time.Second)
				for len(buf) < 3 && time.Now().Before(deadline) {
					buf = q.drainTo(buf, 3-len(buf))
				}
				wg.Wait()
				seen := map[int]bool{}
				for _, v := range buf {
					if seen[v] {
						t.Fatalf("value %d drained twice", v)
					}
					seen[v] = true
				}
				if len(seen) != 3 {
					t.Fatalf("drained %v, want 3 distinct committed producers", buf)
				}
			})
			if q := mk(); q.fifo {
				t.Run("fifo-within-batch", func(t *testing.T) {
					q := mk()
					const n = 10
					items := make([]int, n)
					for i := range items {
						items[i] = i
					}
					done := make(chan struct{})
					go func() {
						defer close(done)
						if d, err := q.putAllCtx(context.Background(), items); d != n || err != nil {
							t.Errorf("PutAllContext = (%d, %v), want (%d, nil)", d, err, n)
						}
					}()
					for i := 0; i < n; i++ {
						if v := q.take(); v != i {
							t.Fatalf("take %d = %d, want %d (in-batch FIFO violated)", i, v, i)
						}
					}
					<-done
				})
			}
		})
	}
}

// TestTransferBatchClosedDrain pins the transfer queue's batch forms of
// the closed-drain promise: buffered deposits made before Close keep
// flowing out of TakeBatch and DrainTo, and ErrClosed appears only when
// (and alongside what) the buffer finally yields.
func TestTransferBatchClosedDrain(t *testing.T) {
	q := synchq.NewTransferQueue[int]()
	q.PutAll([]int{1, 2, 3})
	q.Close()
	buf, err := q.TakeBatchContext(context.Background(), 5)
	if !errors.Is(err, synchq.ErrClosed) {
		t.Fatalf("TakeBatchContext err = %v, want ErrClosed once the buffer ran dry", err)
	}
	if len(buf) != 3 || buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("TakeBatchContext kept %v, want the buffered deposits [1 2 3]", buf)
	}
	if buf, err := q.DrainTo(nil, 5); len(buf) != 0 || !errors.Is(err, synchq.ErrClosed) {
		t.Fatalf("DrainTo after full drain = (%v, %v), want ([], ErrClosed)", buf, err)
	}
}

// Guard against accidental interface regressions: the constructor results
// must keep satisfying the advertised interfaces.
var _ = func() bool {
	for n, mk := range demandImpls() {
		if mk() == nil {
			panic(fmt.Sprintf("nil queue from %s", n))
		}
	}
	return true
}()
