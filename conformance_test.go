package synchq_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq"
)

// Conformance suite: every implementation reachable through the public API
// must satisfy the synchronous hand-off contract. Queue implementations
// get the demand contract; TimedQueue implementations additionally get the
// polar/timed contract.

func demandImpls() map[string]func() synchq.Queue[int] {
	return map[string]func() synchq.Queue[int]{
		"fair":        func() synchq.Queue[int] { return synchq.NewFair[int]() },
		"unfair":      func() synchq.Queue[int] { return synchq.NewUnfair[int]() },
		"naive":       func() synchq.Queue[int] { return synchq.NewNaive[int]() },
		"hanson":      func() synchq.Queue[int] { return synchq.NewHanson[int]() },
		"hansonfast":  func() synchq.Queue[int] { return synchq.NewHansonFast[int]() },
		"java5fair":   func() synchq.Queue[int] { return synchq.NewJava5Fair[int]() },
		"java5unfair": func() synchq.Queue[int] { return synchq.NewJava5Unfair[int]() },
		"gochannel":   func() synchq.Queue[int] { return synchq.NewGoChannel[int]() },
		"eliminating": func() synchq.Queue[int] {
			return synchq.NewEliminating(synchq.NewUnfair[int](), 2, 20*time.Microsecond)
		},
		"transfer":  func() synchq.Queue[int] { return transferAsQueue{synchq.NewTransferQueue[int]()} },
		"segmented": func() synchq.Queue[int] { return synchq.New[int](synchq.Segmented()) },
		"segmented+sharded": func() synchq.Queue[int] {
			return synchq.New[int](synchq.Segmented(), synchq.Sharded(4))
		},
	}
}

// transferAsQueue narrows TransferQueue to the demand contract using its
// synchronous transfer mode.
type transferAsQueue struct{ q *synchq.TransferQueue[int] }

func (t transferAsQueue) Put(v int) { t.q.Transfer(v) }
func (t transferAsQueue) Take() int { return t.q.Take() }

func timedImpls() map[string]func() synchq.TimedQueue[int] {
	return map[string]func() synchq.TimedQueue[int]{
		"fair":        func() synchq.TimedQueue[int] { return synchq.NewFair[int]() },
		"unfair":      func() synchq.TimedQueue[int] { return synchq.NewUnfair[int]() },
		"java5fair":   func() synchq.TimedQueue[int] { return synchq.NewJava5Fair[int]() },
		"java5unfair": func() synchq.TimedQueue[int] { return synchq.NewJava5Unfair[int]() },
		"gochannel":   func() synchq.TimedQueue[int] { return synchq.NewGoChannel[int]() },
		"eliminating": func() synchq.TimedQueue[int] {
			return synchq.NewEliminating(synchq.NewUnfair[int](), 2, 20*time.Microsecond)
		},
		"transfer":  func() synchq.TimedQueue[int] { return synchq.NewTransferQueue[int]() },
		"segmented": func() synchq.TimedQueue[int] { return synchq.New[int](synchq.Segmented()) },
		"segmented+sharded": func() synchq.TimedQueue[int] {
			return synchq.New[int](synchq.Segmented(), synchq.Sharded(4))
		},
	}
}

func TestConformanceDemandContract(t *testing.T) {
	for name, mk := range demandImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Run("handshake", func(t *testing.T) {
				q := mk()
				got := make(chan int)
				go func() { got <- q.Take() }()
				q.Put(1)
				if v := <-got; v != 1 {
					t.Fatalf("Take = %d, want 1", v)
				}
			})
			t.Run("put-waits", func(t *testing.T) {
				q := mk()
				var returned atomic.Bool
				go func() {
					q.Put(2)
					returned.Store(true)
				}()
				time.Sleep(15 * time.Millisecond)
				if returned.Load() {
					t.Fatal("Put returned with no consumer")
				}
				if v := q.Take(); v != 2 {
					t.Fatalf("Take = %d, want 2", v)
				}
			})
			t.Run("conservation", func(t *testing.T) {
				q := mk()
				const workers, per = 3, 200
				var wg sync.WaitGroup
				var sum atomic.Int64
				for w := 0; w < workers; w++ {
					wg.Add(2)
					base := w * per
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							q.Put(base + i)
						}
					}()
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							sum.Add(int64(q.Take()))
						}
					}()
				}
				wg.Wait()
				total := int64(workers * per)
				if want := total * (total - 1) / 2; sum.Load() != want {
					t.Fatalf("sum = %d, want %d", sum.Load(), want)
				}
			})
		})
	}
}

func TestConformanceTimedContract(t *testing.T) {
	for name, mk := range timedImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk()
			if q.Offer(1) {
				t.Fatal("Offer succeeded with no consumer")
			}
			if _, ok := q.Poll(); ok {
				t.Fatal("Poll succeeded with no producer")
			}
			if q.OfferTimeout(1, 5*time.Millisecond) {
				t.Fatal("OfferTimeout succeeded with no consumer")
			}
			if _, ok := q.PollTimeout(5 * time.Millisecond); ok {
				t.Fatal("PollTimeout succeeded with no producer")
			}
			// Patience rewarded on both sides.
			go func() {
				time.Sleep(5 * time.Millisecond)
				q.Put(7)
			}()
			if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 7 {
				t.Fatalf("PollTimeout = (%d,%v), want (7,true)", v, ok)
			}
			done := make(chan int)
			go func() { done <- q.Take() }()
			if !q.OfferTimeout(8, 5*time.Second) {
				t.Fatal("OfferTimeout failed with a consumer en route")
			}
			if v := <-done; v != 8 {
				t.Fatalf("Take = %d, want 8", v)
			}
		})
	}
}

func TestConformanceTimedRace(t *testing.T) {
	// Producer and consumer with equal tiny patience must always agree.
	for name, mk := range timedImpls() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < 100; i++ {
				got := make(chan bool, 1)
				go func() {
					_, ok := q.PollTimeout(500 * time.Microsecond)
					got <- ok
				}()
				sent := q.OfferTimeout(i, 500*time.Microsecond)
				received := <-got
				if sent != received {
					t.Fatalf("iteration %d: sent=%v received=%v", i, sent, received)
				}
			}
			// Whatever happened, nothing may be left behind.
			if v, ok := q.Poll(); ok {
				t.Fatalf("straggler value %d after balanced timed race", v)
			}
		})
	}
}

// Guard against accidental interface regressions: the constructor results
// must keep satisfying the advertised interfaces.
var _ = func() bool {
	for n, mk := range demandImpls() {
		if mk() == nil {
			panic(fmt.Sprintf("nil queue from %s", n))
		}
	}
	return true
}()
