package synchq_test

import (
	"fmt"
	"sync"
	"time"

	"synchq"
)

// A producer and a consumer rendezvous: Put returns only once Take has the
// value.
func ExampleSynchronousQueue() {
	q := synchq.NewUnfair[string]()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fmt.Println("took:", q.Take())
	}()
	q.Put("hello")
	wg.Wait()
	// Output: took: hello
}

// Offer refuses to transfer unless a consumer is already waiting — the
// primitive a cached thread pool uses to decide between reusing an idle
// worker and spawning a new one.
func ExampleSynchronousQueue_Offer() {
	q := synchq.NewFair[int]()
	fmt.Println("no consumer:", q.Offer(1))

	ready := make(chan struct{})
	got := make(chan int)
	go func() {
		close(ready)
		got <- q.Take()
	}()
	<-ready
	// Wait until the consumer is parked in the queue.
	for !q.HasWaitingConsumer() {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("consumer waiting:", q.Offer(2))
	fmt.Println("received:", <-got)
	// Output:
	// no consumer: false
	// consumer waiting: true
	// received: 2
}

// PollTimeout bounds the wait with a patience interval.
func ExampleSynchronousQueue_PollTimeout() {
	q := synchq.NewUnfair[int]()
	if _, ok := q.PollTimeout(10 * time.Millisecond); !ok {
		fmt.Println("timed out: no producer arrived")
	}
	// Output: timed out: no producer arrived
}

// A TransferQueue lets each producer choose synchronous or asynchronous
// delivery on a per-message basis.
func ExampleTransferQueue() {
	q := synchq.NewTransferQueue[string]()

	q.Put("async: buffered immediately") // returns at once
	fmt.Println(q.Take())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fmt.Println(q.Take())
	}()
	q.Transfer("sync: waits for the consumer") // returns after Take
	wg.Wait()
	// Output:
	// async: buffered immediately
	// sync: waits for the consumer
}

// PutAll deposits a whole burst with a single tail splice, and TakeBatch
// drains it with one wait for the first value plus a no-wait fill for the
// rest — the batched stage shape used in examples/pipeline.
func ExampleTransferQueue_PutAll() {
	q := synchq.NewTransferQueue[string]()
	q.PutAll([]string{"a", "b", "c", "d"}) // one burst, one splice
	fmt.Println("batch:", q.TakeBatch(3))  // waits for the first, fills the rest
	fmt.Println("rest:", q.TakeBatch(3))
	// Output:
	// batch: [a b c]
	// rest: [d]
}

// Two goroutines swap values through an Exchanger.
func ExampleExchanger() {
	x := synchq.NewExchanger[string]()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fmt.Println("B got:", x.Exchange("from B"))
	}()
	fmt.Println("A got:", x.Exchange("from A"))
	wg.Wait()
	// Unordered output:
	// A got: from B
	// B got: from A
}
