package synchq

import (
	"context"
	"errors"
	"time"

	"synchq/internal/core"
	"synchq/internal/segq"
	"synchq/internal/shard"
)

// ErrTimeout is returned by deadline-bounded operations whose patience
// interval expired before a counterpart arrived. It is distinct from
// external cancellation: a context operation returns ErrTimeout only when
// the context's own deadline ran out, and the context's cancellation cause
// (context.Cause) otherwise.
var ErrTimeout = errors.New("synchq: operation timed out")

// ErrClosed is returned by error-reporting operations invoked on (or
// waiting in) a queue that was shut down with Close. Demand operations
// without an error return (Put, Take) panic instead, mirroring Go's
// closed-channel semantics.
var ErrClosed = errors.New("synchq: queue closed")

// ctxError maps a non-OK status from a context-bounded operation to its
// error, keeping deadline expiry and external cancellation distinct:
// ErrTimeout means the patience ran out, while a canceled context reports
// its cancellation cause (context.Cause: context.Canceled for a plain
// cancel, or the cause handed to a CancelCauseFunc).
func ctxError(ctx context.Context, st core.Status) error {
	if st == core.Closed {
		return ErrClosed
	}
	// Timeout and Canceled both mean the wait ended without a transfer,
	// and the context's Done channel closes for deadline expiry just as
	// for an explicit cancel — so the status alone cannot separate the
	// two. The cause can: deadline expiry yields context.DeadlineExceeded,
	// while an external cancel carries context.Canceled or the cause
	// handed to the CancelCauseFunc.
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.DeadlineExceeded) {
		return cause
	}
	return ErrTimeout
}

// Queue is the minimal synchronous hand-off interface: both operations
// block until a counterpart arrives. Every implementation in this module
// satisfies it, including the timeout-free classics (Naive, Hanson).
type Queue[T any] interface {
	// Put transfers v to a consumer, waiting for one to arrive.
	Put(v T)
	// Take receives a value from a producer, waiting for one to arrive.
	Take() T
}

// TimedQueue is the paper's rich interface: demand operations plus
// poll/offer with zero or bounded patience.
type TimedQueue[T any] interface {
	Queue[T]
	// Offer transfers v only if a consumer is already waiting.
	Offer(v T) bool
	// OfferTimeout transfers v, waiting up to d for a consumer.
	OfferTimeout(v T, d time.Duration) bool
	// Poll receives a value only if a producer is already waiting.
	Poll() (T, bool)
	// PollTimeout receives a value, waiting up to d for a producer.
	PollTimeout(d time.Duration) (T, bool)
}

// impl is the method set shared by the two core algorithms.
type impl[T any] interface {
	Put(T)
	Take() T
	PutDeadline(T, time.Time, <-chan struct{}) core.Status
	TakeDeadline(time.Time, <-chan struct{}) (T, core.Status)
	Offer(T) bool
	OfferTimeout(T, time.Duration) bool
	Poll() (T, bool)
	PollTimeout(time.Duration) (T, bool)
	HasWaitingConsumer() bool
	HasWaitingProducer() bool
	IsEmpty() bool
	ReserveTake() (T, core.Ticket[T], bool)
	ReservePut(T) (core.Ticket[T], bool)
	PutBatch([]T, time.Time, <-chan struct{}) (int, core.Status)
	TakeBatch([]T, int, time.Time, <-chan struct{}) ([]T, core.Status)
	Close()
	Closed() bool
}

// SynchronousQueue is a nonblocking, contention-free synchronous queue. It
// pairs producers and consumers with no buffering: each Put waits for a
// Take and vice versa. Construct one with New (see the Fair, Sharded,
// AutoShard, Segmented and Instrument options).
type SynchronousQueue[T any] struct {
	impl impl[T]
	fair bool
	// fab is the sharding introspection surface, nil on unsharded queues.
	// The hooks close over the fabric without making SynchronousQueue
	// depend on its element type parameterization.
	fab  *fabricHooks
	inst *Metrics
}

// fabricHooks adapts a shard fabric's introspection surface (effective
// width, ceiling, stats snapshot) for the queue and Metrics accessors.
type fabricHooks struct {
	width func() int
	max   func() int
	stats func() FabricStats
}

var (
	_ TimedQueue[int] = (*SynchronousQueue[int])(nil)
	_ TimedQueue[int] = (*TransferQueue[int])(nil)
)

// Option configures a queue built by New.
type Option func(*config)

type config struct {
	fair      bool
	sharded   bool
	autoShard bool
	segmented bool
	shards    int
	wait      core.WaitConfig
	inst      *Metrics

	// Elimination front-end (NewEliminatingQueue / Eliminating options).
	elim         bool
	elimAdaptive bool
	elimSlots    int
	elimPatience time.Duration
}

// buildConfig folds opts into a config.
func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Fair selects FIFO (dual queue) pairing when true, LIFO (dual stack)
// pairing when false. The default is unfair, matching
// java.util.concurrent.SynchronousQueue.
func Fair(fair bool) Option {
	return func(c *config) { c.fair = fair }
}

// Spins overrides the spin-then-park budgets: timed is the spin count
// before parking for deadline-bounded waits, untimed for unbounded waits.
// Negative values disable spinning entirely; zero keeps the platform
// default (no spinning on uniprocessors).
func Spins(timed, untimed int) Option {
	return func(c *config) { c.wait = core.WaitConfig{TimedSpins: timed, UntimedSpins: untimed} }
}

// Segmented selects the segment-backed hand-off core: waiters live in
// fixed-size, cache-line-aligned segments of hand-off cells claimed by a
// single fetch-and-add per side and resolved by a single CAS per cell,
// instead of the dual structures' per-waiter linked nodes. Arrival order
// still decides pairing — each side's counter is FIFO by construction —
// so a segmented queue reports Fair() true; what changes is the memory
// system's view: one allocation amortizes over a whole segment of
// transfers, hot-path pointer chasing disappears, and fully consumed or
// aborted segments are unlinked so cancellation storms cannot grow the
// structure (see DESIGN.md "Segmented core").
//
// Segmented composes with Sharded (each shard becomes a segmented core)
// and Instrument; it overrides Fair's choice of implementation.
func Segmented() Option {
	return func(c *config) { c.segmented = true }
}

// Sharded stripes the queue across n independent dual structures (n is
// rounded up to a power of two and capped at 64, since the fabric's
// presence summaries are single 64-bit words), trading
// global ordering for multi-core scalability: instead of every hand-off
// contending on one head/tail word, operations are spread across n cache-
// independent structures, with a work-stealing sweep guaranteeing that a
// waiter on one shard is still found by counterparts dispatched to any
// other. Sharded(n) with n > 0 is the fixed-width escape hatch — the
// width never changes; n <= 0 is equivalent to AutoShard, the
// self-scaling fabric. The queue's Shards method reports the current
// effective width, MaxShards the ceiling.
//
// The ordering contract is relaxed accordingly: with Fair(true), FIFO
// pairing holds only among waiters on the same shard — two producers
// waiting on different shards may be fulfilled in either order. Synchrony
// is NOT relaxed: every transfer still pairs exactly one producer with one
// consumer, with no buffering. Choose sharding when throughput under heavy
// multi-core contention matters more than a global arrival order; see
// DESIGN.md for the steal protocol, its fairness bounds, and the
// self-scaling width controller.
func Sharded(n int) Option {
	return func(c *config) { c.sharded, c.shards, c.autoShard = true, n, n <= 0 }
}

// AutoShard selects the self-scaling sharded fabric: the queue is striped
// like Sharded, but the effective width — how many shards new operations
// route to — is re-picked continuously from observed contention, between
// 1 and a GOMAXPROCS-sized ceiling (MaxShards). A quiet queue collapses
// to effective width 1 and hands off at near-unsharded cost; a contended
// one activates shards as lost probe races accumulate. Deactivated
// shards are swept clean through the ordinary commit path, so the
// synchrony and conservation contracts hold at every width; the ordering
// relaxation is the same as Sharded's. Equivalent to Sharded(0).
func AutoShard() Option {
	return func(c *config) { c.sharded, c.shards, c.autoShard = true, 0, true }
}

// New returns a synchronous queue configured by opts; with no options it is
// equivalent to NewUnfair.
func New[T any](opts ...Option) *SynchronousQueue[T] {
	return newFromConfig[T](buildConfig(opts))
}

// newFromConfig builds the queue a config describes. It is the shared back
// half of New and NewEliminatingQueue, so every option (including
// Instrument) means the same thing under both constructors.
func newFromConfig[T any](c config) *SynchronousQueue[T] {
	q := &SynchronousQueue[T]{fair: c.fair || c.segmented, inst: c.inst}
	switch {
	case c.sharded:
		mk := func(i int) shard.Dual[T] {
			w := c.wait
			if c.inst != nil {
				// Each shard records into its own child handle so
				// Metrics.ShardStats can expose per-shard behavior;
				// Metrics.Stats merges them back together.
				w.Metrics = c.inst.shardHandle(i)
			}
			if c.segmented {
				return segq.New[T](w)
			}
			if c.fair {
				return core.NewDualQueue[T](w)
			}
			return core.NewDualStack[T](w)
		}
		var fab *shard.Fabric[T]
		if c.autoShard {
			fab = shard.NewAuto(c.shards, mk)
		} else {
			fab = shard.New(c.shards, mk)
		}
		// Fabric-level events — steal counts, steal latency, width
		// changes — go to the root handle, not to any one shard.
		fab.SetMetrics(c.wait.Metrics)
		fab.SetFault(c.wait.Fault)
		q.impl = fab
		q.fab = &fabricHooks{
			width: fab.Shards,
			max:   fab.MaxShards,
			stats: func() FabricStats { return fabricStatsFrom(fab.Stats()) },
		}
		if c.inst != nil {
			c.inst.setFabric(q.fab)
		}
	case c.segmented:
		q.impl = segq.New[T](c.wait)
	case c.fair:
		q.impl = core.NewDualQueue[T](c.wait)
	default:
		q.impl = core.NewDualStack[T](c.wait)
	}
	return q
}

// Fair reports whether this queue pairs waiters in FIFO order (per shard,
// when sharded — see Sharded for the relaxed global contract).
func (q *SynchronousQueue[T]) Fair() bool { return q.fair }

// Shards returns the current effective width: the number of independent
// structures new operations are routed across. It is 1 for an unsharded
// queue, the constructed (power-of-two) count for Sharded(n) with n > 0,
// and moves between 1 and MaxShards with observed contention for an
// AutoShard / Sharded(0) queue.
func (q *SynchronousQueue[T]) Shards() int {
	if q.fab == nil {
		return 1
	}
	return q.fab.width()
}

// MaxShards returns the width ceiling: the number of constructed shards
// (1 for an unsharded queue). For a fixed-width queue MaxShards equals
// Shards forever; for a self-scaling one it is the largest width the
// controller may activate.
func (q *SynchronousQueue[T]) MaxShards() int {
	if q.fab == nil {
		return 1
	}
	return q.fab.max()
}

// FabricStats snapshots the sharded fabric's introspection surface —
// effective width, width-change count, per-shard depth and steal
// breakdown. ok is false for an unsharded queue (the zero Stats carries
// no information there). The same snapshot is reachable from
// Metrics().FabricStats() on an instrumented queue.
func (q *SynchronousQueue[T]) FabricStats() (FabricStats, bool) {
	if q.fab == nil {
		return FabricStats{}, false
	}
	return q.fab.stats(), true
}

// Metrics returns the instrumentation set attached with the Instrument
// option, or nil for an uninstrumented queue. Nil is safe to use: every
// *Metrics method (Stats, Reset, …) works on a nil receiver.
func (q *SynchronousQueue[T]) Metrics() *Metrics { return q.inst }

// Put transfers v to a consumer, waiting as long as necessary for one to
// arrive.
func (q *SynchronousQueue[T]) Put(v T) { q.impl.Put(v) }

// Take receives a value from a producer, waiting as long as necessary for
// one to arrive.
func (q *SynchronousQueue[T]) Take() T { return q.impl.Take() }

// Offer transfers v only if a consumer is already waiting; it reports
// whether the transfer happened. Offer never blocks.
func (q *SynchronousQueue[T]) Offer(v T) bool { return q.impl.Offer(v) }

// OfferTimeout transfers v, waiting up to d for a consumer. A non-positive
// d is equivalent to Offer.
func (q *SynchronousQueue[T]) OfferTimeout(v T, d time.Duration) bool {
	return q.impl.OfferTimeout(v, d)
}

// Poll receives a value only if a producer is already waiting. Poll never
// blocks.
func (q *SynchronousQueue[T]) Poll() (T, bool) { return q.impl.Poll() }

// PollTimeout receives a value, waiting up to d for a producer. A
// non-positive d is equivalent to Poll.
func (q *SynchronousQueue[T]) PollTimeout(d time.Duration) (T, bool) {
	return q.impl.PollTimeout(d)
}

// PutContext transfers v to a consumer, abandoning the attempt if ctx is
// done first. It returns nil on success, ErrClosed if the queue is (or
// becomes) closed, ErrTimeout if the context's own deadline expired, and
// otherwise the context's cancellation cause (context.Cause: this is
// context.Canceled for a plain cancel) — so callers can distinguish "ran
// out of patience" from "told to stop" with errors.Is.
func (q *SynchronousQueue[T]) PutContext(ctx context.Context, v T) error {
	deadline, _ := ctx.Deadline()
	st := q.impl.PutDeadline(v, deadline, ctx.Done())
	if st == core.OK {
		return nil
	}
	return ctxError(ctx, st)
}

// TakeContext receives a value, abandoning the attempt if ctx is done
// first. Errors follow the PutContext contract: ErrClosed on a closed
// queue, ErrTimeout when the context's deadline expired, and the context's
// cancellation cause when it was canceled externally.
func (q *SynchronousQueue[T]) TakeContext(ctx context.Context) (T, error) {
	var zero T
	deadline, _ := ctx.Deadline()
	v, st := q.impl.TakeDeadline(deadline, ctx.Done())
	if st == core.OK {
		return v, nil
	}
	return zero, ctxError(ctx, st)
}

// PollWait receives a value, waiting until a producer arrives, the deadline
// passes (zero deadline: no deadline) or cancel fires (nil: never). It is
// the low-level primitive beneath PollTimeout and TakeContext, exposed for
// integrations — such as thread pools — that manage their own deadlines.
func (q *SynchronousQueue[T]) PollWait(deadline time.Time, cancel <-chan struct{}) (T, bool) {
	v, st := q.impl.TakeDeadline(deadline, cancel)
	if st != core.OK {
		var zero T
		return zero, false
	}
	return v, true
}

// OfferWait transfers v, waiting until a consumer arrives, the deadline
// passes (zero: no deadline) or cancel fires (nil: never).
func (q *SynchronousQueue[T]) OfferWait(v T, deadline time.Time, cancel <-chan struct{}) bool {
	return q.impl.PutDeadline(v, deadline, cancel) == core.OK
}

// HasWaitingConsumer reports whether a consumer was observed waiting. The
// answer may be stale by the time it is returned; it is a heuristic (for
// example, for deciding whether submitting work will require a new
// worker).
func (q *SynchronousQueue[T]) HasWaitingConsumer() bool { return q.impl.HasWaitingConsumer() }

// HasWaitingProducer reports whether a producer was observed waiting.
func (q *SynchronousQueue[T]) HasWaitingProducer() bool { return q.impl.HasWaitingProducer() }

// IsEmpty reports whether the queue was observed with no waiting producers
// or consumers.
func (q *SynchronousQueue[T]) IsEmpty() bool { return q.impl.IsEmpty() }

// Close shuts the queue down: every parked or spinning waiter is woken and
// observes the closed state (blocking demand operations panic with
// ErrClosed's message, exactly as a send on a closed channel panics;
// status-reporting operations such as PutContext return ErrClosed), and
// all subsequent operations are rejected the same way. Close is
// idempotent, lock-free, and safe to call concurrently with any operation:
// each in-flight hand-off either completes in both parties or in neither.
func (q *SynchronousQueue[T]) Close() { q.impl.Close() }

// Closed reports whether Close has been called.
func (q *SynchronousQueue[T]) Closed() bool { return q.impl.Closed() }
