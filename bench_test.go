// Benchmarks regenerating the paper's figures under `go test -bench`.
//
// Each BenchmarkFigureN mirrors one figure of the paper's evaluation; the
// sub-benchmark grid is algorithm × concurrency level, and ns/op is the
// figure's metric (ns per transfer for Figures 3–5, ns per task for
// Figure 6). The testing.B sweeps use a subset of the paper's levels to
// keep `go test -bench=.` tractable; the full sweeps are produced by
// cmd/sqbench.
//
// The Ablation benchmarks quantify the design decisions DESIGN.md calls
// out: the spin-then-park waiting policy (Ablation A), the cost of
// cancellation with lazy cleaning (Ablation B), and the elimination
// front-end (Ablation C).
//
// Note on parallelism: on hosts with few CPUs, run with GOMAXPROCS raised
// (e.g. GOMAXPROCS=8 go test -bench=.) to reproduce the paper's contention
// regime; see EXPERIMENTS.md.
package synchq_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"synchq"
	"synchq/internal/bench"
	"synchq/internal/core"
)

// benchLevels is the testing.B subset of the paper's sweep.
var benchLevels = []int{1, 4, 16, 64}

func sanitize(name string) string {
	name = strings.ReplaceAll(name, " ", "")
	name = strings.ReplaceAll(name, "(", "_")
	return strings.ReplaceAll(name, ")", "")
}

// BenchmarkFigure3 is the N-producer : N-consumer synchronous hand-off
// (paper Figure 3); ns/op is ns/transfer.
func BenchmarkFigure3(b *testing.B) {
	for _, a := range bench.Algorithms(false) {
		for _, pairs := range benchLevels {
			b.Run(fmt.Sprintf("%s/pairs=%d", sanitize(a.Name), pairs), func(b *testing.B) {
				bench.RunHandoff(a.New(), pairs, pairs, int64(b.N), nil)
			})
		}
	}
}

// BenchmarkFigure4 is the 1-producer : N-consumer hand-off (paper Figure 4).
func BenchmarkFigure4(b *testing.B) {
	for _, a := range bench.Algorithms(false) {
		for _, consumers := range benchLevels {
			b.Run(fmt.Sprintf("%s/consumers=%d", sanitize(a.Name), consumers), func(b *testing.B) {
				bench.RunHandoff(a.New(), 1, consumers, int64(b.N), nil)
			})
		}
	}
}

// BenchmarkFigure5 is the N-producer : 1-consumer hand-off (paper Figure 5).
func BenchmarkFigure5(b *testing.B) {
	for _, a := range bench.Algorithms(false) {
		for _, producers := range benchLevels {
			b.Run(fmt.Sprintf("%s/producers=%d", sanitize(a.Name), producers), func(b *testing.B) {
				bench.RunHandoff(a.New(), producers, 1, int64(b.N), nil)
			})
		}
	}
}

// BenchmarkFigure6 is the cached-thread-pool macrobenchmark (paper
// Figure 6); ns/op is ns/task. Hanson is omitted, as in the paper.
func BenchmarkFigure6(b *testing.B) {
	for _, a := range bench.Algorithms(false) {
		if a.NewPoolQueue == nil {
			continue
		}
		for _, threads := range benchLevels {
			b.Run(fmt.Sprintf("%s/threads=%d", sanitize(a.Name), threads), func(b *testing.B) {
				bench.RunPool(a.NewPoolQueue(), threads, int64(b.N))
			})
		}
	}
}

// BenchmarkAblationSpin compares the paper's spin-then-park waiting policy
// against park-only and heavy-spin variants on both new algorithms
// (DESIGN.md Ablation A). On a uniprocessor the platform default already
// collapses to park-only; the forced-spin variant then shows the cost the
// paper's platform check avoids.
func BenchmarkAblationSpin(b *testing.B) {
	policies := []struct {
		name string
		cfg  core.WaitConfig
	}{
		{"default", core.WaitConfig{}},
		{"park-only", core.WaitConfig{TimedSpins: -1, UntimedSpins: -1}},
		{"spin-heavy", core.WaitConfig{TimedSpins: 512, UntimedSpins: 4096}},
	}
	for _, pol := range policies {
		cfg := pol.cfg
		b.Run("stack/"+pol.name, func(b *testing.B) {
			bench.RunHandoff(core.NewDualStack[int64](cfg), 4, 4, int64(b.N), nil)
		})
		b.Run("queue/"+pol.name, func(b *testing.B) {
			bench.RunHandoff(core.NewDualQueue[int64](cfg), 4, 4, int64(b.N), nil)
		})
	}
}

// BenchmarkAblationClean measures the timeout/cancellation path: offers
// with tiny patience against a deliberately absent consumer, so every
// operation enqueues, times out, cancels, and must be cleaned (DESIGN.md
// Ablation B). ns/op is the full cancel-and-clean round trip.
func BenchmarkAblationClean(b *testing.B) {
	b.Run("queue", func(b *testing.B) {
		q := core.NewDualQueue[int64](core.WaitConfig{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.OfferTimeout(int64(i), time.Microsecond)
		}
	})
	b.Run("stack", func(b *testing.B) {
		q := core.NewDualStack[int64](core.WaitConfig{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.OfferTimeout(int64(i), time.Microsecond)
		}
	})
}

// eliminatingSQ adapts EliminatingQueue to the bench.SQ surface.
type eliminatingSQ struct {
	q *synchq.EliminatingQueue[int64]
}

func (e eliminatingSQ) Put(v int64) { e.q.Put(v) }
func (e eliminatingSQ) Take() int64 { return e.q.Take() }

// BenchmarkAblationElimination compares the plain dual stack against the
// same stack behind an elimination arena front-end at increasing
// contention (DESIGN.md Ablation C). The paper predicts elimination pays
// only under extreme contention.
func BenchmarkAblationElimination(b *testing.B) {
	for _, pairs := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("plain/pairs=%d", pairs), func(b *testing.B) {
			bench.RunHandoff(core.NewDualStack[int64](core.WaitConfig{}), pairs, pairs, int64(b.N), nil)
		})
		b.Run(fmt.Sprintf("eliminating/pairs=%d", pairs), func(b *testing.B) {
			q := synchq.NewEliminating(synchq.NewUnfair[int64](), 0, 5*time.Microsecond)
			bench.RunHandoff(eliminatingSQ{q}, pairs, pairs, int64(b.N), nil)
		})
	}
}

// BenchmarkUncontendedRoundTrip is the two-goroutine ping-pong floor: the
// minimum achievable hand-off latency of each algorithm with no
// contention at all.
func BenchmarkUncontendedRoundTrip(b *testing.B) {
	for _, a := range bench.Algorithms(true) {
		b.Run(sanitize(a.Name), func(b *testing.B) {
			bench.RunHandoff(a.New(), 1, 1, int64(b.N), nil)
		})
	}
}
