package synchq_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq"
)

func TestNewDefaultsToUnfair(t *testing.T) {
	q := synchq.New[int]()
	if q.Fair() {
		t.Fatal("New() produced a fair queue; default should be unfair")
	}
	if !synchq.NewFair[int]().Fair() {
		t.Fatal("NewFair produced an unfair queue")
	}
	if synchq.NewUnfair[int]().Fair() {
		t.Fatal("NewUnfair produced a fair queue")
	}
	if !synchq.New[int](synchq.Fair(true)).Fair() {
		t.Fatal("New(Fair(true)) produced an unfair queue")
	}
}

func roundTrip(t *testing.T, q *synchq.SynchronousQueue[int]) {
	t.Helper()
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("Take = %d, want 42", got)
	}
}

func TestPutTakeBothVariants(t *testing.T) {
	roundTrip(t, synchq.NewFair[int]())
	roundTrip(t, synchq.NewUnfair[int]())
	roundTrip(t, synchq.New[int](synchq.Spins(8, 64)))
	roundTrip(t, synchq.New[int](synchq.Spins(-1, -1)))
}

func TestOfferPollSurface(t *testing.T) {
	for _, fair := range []bool{true, false} {
		q := synchq.New[int](synchq.Fair(fair))
		if q.Offer(1) {
			t.Fatal("Offer succeeded on empty queue")
		}
		if _, ok := q.Poll(); ok {
			t.Fatal("Poll succeeded on empty queue")
		}
		if q.OfferTimeout(1, 5*time.Millisecond) {
			t.Fatal("OfferTimeout succeeded with no consumer")
		}
		if _, ok := q.PollTimeout(5 * time.Millisecond); ok {
			t.Fatal("PollTimeout succeeded with no producer")
		}
		go q.Put(5)
		if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 5 {
			t.Fatalf("PollTimeout = (%d,%v), want (5,true)", v, ok)
		}
	}
}

func TestPutContextCancel(t *testing.T) {
	q := synchq.NewFair[int]()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() { errc <- q.PutContext(ctx, 1) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("PutContext = %v, want context.Canceled", err)
	}
}

func TestTakeContextDeadline(t *testing.T) {
	q := synchq.NewUnfair[int]()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := q.TakeContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, synchq.ErrTimeout) {
		t.Fatalf("TakeContext = %v, want deadline error", err)
	}
}

func TestTakeContextSuccess(t *testing.T) {
	q := synchq.NewFair[int]()
	go q.Put(9)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := q.TakeContext(ctx)
	if err != nil || v != 9 {
		t.Fatalf("TakeContext = (%d,%v), want (9,nil)", v, err)
	}
}

func TestPollWaitOfferWait(t *testing.T) {
	q := synchq.NewUnfair[int]()
	cancel := make(chan struct{})
	got := make(chan int, 1)
	go func() {
		if v, ok := q.PollWait(time.Time{}, cancel); ok {
			got <- v
		} else {
			got <- -1
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if !q.OfferWait(3, time.Now().Add(time.Second), nil) {
		t.Fatal("OfferWait failed with a waiting consumer")
	}
	if v := <-got; v != 3 {
		t.Fatalf("PollWait = %d, want 3", v)
	}
	// Cancellation path.
	done := make(chan bool)
	cancel2 := make(chan struct{})
	go func() {
		_, ok := q.PollWait(time.Time{}, cancel2)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel2)
	if ok := <-done; ok {
		t.Fatal("PollWait returned a value after cancellation")
	}
}

func TestObservers(t *testing.T) {
	q := synchq.NewFair[int]()
	if !q.IsEmpty() || q.HasWaitingConsumer() || q.HasWaitingProducer() {
		t.Fatal("fresh queue misreports state")
	}
	go q.Put(1)
	deadline := time.Now().Add(5 * time.Second)
	for !q.HasWaitingProducer() {
		if time.Now().After(deadline) {
			t.Fatal("producer never observed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if v := q.Take(); v != 1 {
		t.Fatalf("Take = %d", v)
	}
}

func TestBaselineConstructors(t *testing.T) {
	run := func(q synchq.Queue[int]) {
		done := make(chan int)
		go func() { done <- q.Take() }()
		q.Put(8)
		if got := <-done; got != 8 {
			t.Fatalf("Take = %d, want 8", got)
		}
	}
	run(synchq.NewNaive[int]())
	run(synchq.NewHanson[int]())
	run(synchq.NewJava5Fair[int]())
	run(synchq.NewJava5Unfair[int]())
	run(synchq.NewGoChannel[int]())
}

func TestTransferQueuePublicAPI(t *testing.T) {
	q := synchq.NewTransferQueue[string]()
	q.Put("a") // async
	if v := q.Take(); v != "a" {
		t.Fatalf("Take = %q, want a", v)
	}
	if q.TryTransfer("b") {
		t.Fatal("TryTransfer succeeded with no consumer")
	}
	if q.TransferTimeout("c", 5*time.Millisecond) {
		t.Fatal("TransferTimeout succeeded with no consumer")
	}
	done := make(chan string)
	go func() { done <- q.Take() }()
	deadline := time.Now().Add(5 * time.Second)
	for !q.HasWaitingConsumer() {
		if time.Now().After(deadline) {
			t.Fatal("consumer never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	q.Transfer("d")
	if got := <-done; got != "d" {
		t.Fatalf("Take = %q, want d", got)
	}
}

func TestTransferQueueContext(t *testing.T) {
	q := synchq.NewTransferQueue[int]()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.TransferContext(ctx, 1); err == nil {
		t.Fatal("TransferContext succeeded with no consumer")
	}
	if _, err := q.TakeContext(ctx); err == nil {
		t.Fatal("TakeContext succeeded; queue should be empty (timed-out transfer must not buffer)")
	}
	q.Put(5)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if v, err := q.TakeContext(ctx2); err != nil || v != 5 {
		t.Fatalf("TakeContext = (%d,%v), want (5,nil)", v, err)
	}
}

func TestExchangerPublicAPI(t *testing.T) {
	x := synchq.NewExchanger[int]()
	done := make(chan int)
	go func() { done <- x.Exchange(1) }()
	got := x.Exchange(2)
	if got != 1 || <-done != 2 {
		t.Fatal("exchange did not swap values")
	}
	if _, ok := x.ExchangeTimeout(1, 5*time.Millisecond); ok {
		t.Fatal("ExchangeTimeout succeeded with no partner")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := x.ExchangeContext(ctx, 1); err == nil {
		t.Fatal("ExchangeContext succeeded with no partner")
	}
}

func TestExchangerSizeOne(t *testing.T) {
	x := synchq.NewExchangerSize[int](1)
	done := make(chan int)
	go func() { done <- x.Exchange(10) }()
	if got := x.Exchange(20); got != 10 {
		t.Fatalf("Exchange = %d, want 10", got)
	}
	<-done
}

func TestEliminatingQueueRoundTrip(t *testing.T) {
	q := synchq.NewEliminating(synchq.NewUnfair[int](), 2, 50*time.Microsecond)
	const n = 1000
	var wg sync.WaitGroup
	var sum atomic.Int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			q.Put(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			sum.Add(int64(q.Take()))
		}
	}()
	wg.Wait()
	if want := int64(n * (n + 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d (values lost or duplicated)", sum.Load(), want)
	}
}

func TestEliminatingQueueTimedOps(t *testing.T) {
	q := synchq.NewEliminating(synchq.NewUnfair[int](), 2, 50*time.Microsecond)
	if q.Offer(1) {
		t.Fatal("Offer succeeded with no consumer")
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded with no producer")
	}
	if q.OfferTimeout(1, 2*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if _, ok := q.PollTimeout(2 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
	go q.Put(5)
	if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 5 {
		t.Fatalf("PollTimeout = (%d,%v), want (5,true)", v, ok)
	}
}

func TestConcurrentLoadPublicAPI(t *testing.T) {
	for _, fair := range []bool{true, false} {
		q := synchq.New[int64](synchq.Fair(fair))
		const producers, consumers, per = 6, 6, 400
		var wg sync.WaitGroup
		var sum atomic.Int64
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(id int64) {
				defer wg.Done()
				for i := int64(0); i < per; i++ {
					q.Put(id*per + i)
				}
			}(int64(p))
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < producers*per/consumers; i++ {
					sum.Add(q.Take())
				}
			}()
		}
		wg.Wait()
		total := int64(producers * per)
		if want := total * (total - 1) / 2; sum.Load() != want {
			t.Fatalf("fair=%v: sum = %d, want %d", fair, sum.Load(), want)
		}
	}
}

func TestPublicReservationAPI(t *testing.T) {
	for _, fair := range []bool{true, false} {
		q := synchq.New[int](synchq.Fair(fair))

		// Pending take ticket, fulfilled by a later producer.
		_, tk, ok := q.TakeReserve()
		if ok || tk == nil {
			t.Fatal("expected a pending take ticket")
		}
		if _, ok := tk.TryFollowup(); ok {
			t.Fatal("TryFollowup succeeded with no producer")
		}
		go q.Put(42)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		v, err := tk.Await(ctx)
		cancel()
		if err != nil || v != 42 {
			t.Fatalf("Await = (%d,%v), want (42,nil)", v, err)
		}

		// Pending put ticket, aborted.
		ptk, ok := q.PutReserve(1)
		if ok {
			t.Fatal("unexpected immediate delivery")
		}
		if !ptk.Abort() {
			t.Fatal("Abort failed")
		}
		if _, ok := q.Poll(); ok {
			t.Fatal("aborted offer visible to Poll")
		}

		// AwaitTimeout path.
		_, tk2, _ := q.TakeReserve()
		if _, ok := tk2.AwaitTimeout(10 * time.Millisecond); ok {
			t.Fatal("AwaitTimeout succeeded with no producer")
		}
	}
}
