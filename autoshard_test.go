package synchq

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestAutoShardQuietWidthOne: an adaptive queue with no contention stays
// collapsed at effective width 1, so a single uncontended pair pays the
// plain-core price rather than the sharding tax.
func TestAutoShardQuietWidthOne(t *testing.T) {
	q := New[int](AutoShard())
	if got := q.Shards(); got != 1 {
		t.Fatalf("fresh adaptive queue width = %d, want 1", got)
	}
	done := make(chan int, 1)
	go func() {
		sum := 0
		for i := 0; i < 2000; i++ {
			sum += q.Take()
		}
		done <- sum
	}()
	want := 0
	for i := 0; i < 2000; i++ {
		q.Put(i)
		want += i
	}
	if got := <-done; got != want {
		t.Fatalf("transfer sum = %d, want %d", got, want)
	}
	if got := q.Shards(); got != 1 {
		t.Errorf("quiet 1-pair run ended at width %d, want 1 (collapse)", got)
	}
}

// TestAutoShardFixedEscapeHatch: Sharded(n) with n > 0 keeps its fixed
// width — the controller never runs.
func TestAutoShardFixedEscapeHatch(t *testing.T) {
	q := New[int](Sharded(4))
	if w, m := q.Shards(), q.MaxShards(); w != 4 || m != 4 {
		t.Fatalf("Sharded(4): width %d, ceiling %d, want 4, 4", w, m)
	}
	st, ok := q.FabricStats()
	if !ok || st.Adaptive {
		t.Fatalf("Sharded(4) FabricStats = %+v, %v; want non-adaptive fabric", st, ok)
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q.Put(i)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q.Take()
			}
		}()
	}
	wg.Wait()
	if got := q.Shards(); got != 4 {
		t.Errorf("fixed-width queue drifted to width %d, want 4", got)
	}
	if st, _ := q.FabricStats(); st.WidthChanges != 0 {
		t.Errorf("fixed-width queue recorded %d width changes, want 0", st.WidthChanges)
	}
}

// TestAutoShardWidthBounds: under genuine multi-producer contention the
// adaptive width stays a power of two within [1, MaxShards] and every
// item is conserved, whatever the controller decided on this host.
func TestAutoShardWidthBounds(t *testing.T) {
	q := New[int](Fair(true), AutoShard(), Instrument(NewMetrics()))
	const workers, per = 8, 500
	var wg sync.WaitGroup
	var sum int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < per; i++ {
				local += q.Take()
			}
			mu.Lock()
			sum += int64(local)
			mu.Unlock()
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Put(base + i)
			}
		}(w * per)
	}
	wg.Wait()
	n := workers * per
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Fatalf("conservation violated: sum %d, want %d", sum, want)
	}
	w, m := q.Shards(), q.MaxShards()
	if w < 1 || w > m || w&(w-1) != 0 {
		t.Errorf("effective width %d out of bounds (ceiling %d, must be pow2)", w, m)
	}
	st, ok := q.Metrics().FabricStats()
	if !ok {
		t.Fatal("Metrics().FabricStats() not reachable on an adaptive queue")
	}
	if !st.Adaptive || st.MaxShards != m || st.Width != w {
		t.Errorf("Metrics snapshot %+v disagrees with queue (width %d ceiling %d)", st, w, m)
	}
	if len(st.Shards) != m {
		t.Errorf("per-shard breakdown has %d entries, want %d", len(st.Shards), m)
	}
}

// TestFabricStatsJSON pins the stable snake_case JSON wire names of the
// introspection snapshot.
func TestFabricStatsJSON(t *testing.T) {
	q := New[int](Sharded(2))
	st, ok := q.FabricStats()
	if !ok {
		t.Fatal("FabricStats on a sharded queue")
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"max_shards", "width", "adaptive", "width_changes",
		"steals", "probe_misses", "probe_skips", "shards",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("FabricStats JSON missing stable key %q (got %s)", key, b)
		}
	}
	shards, ok := m["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("shards breakdown = %v, want 2 entries", m["shards"])
	}
	first, _ := shards[0].(map[string]any)
	for _, key := range []string{"index", "active", "depth", "steals"} {
		if _, ok := first[key]; !ok {
			t.Errorf("FabricShardStats JSON missing stable key %q (got %v)", key, first)
		}
	}

	// Unsharded structures report no fabric, from both access paths.
	plain := New[int](Instrument(NewMetrics()))
	if _, ok := plain.FabricStats(); ok {
		t.Error("unsharded queue reported fabric stats")
	}
	if _, ok := plain.Metrics().FabricStats(); ok {
		t.Error("unsharded queue's Metrics reported fabric stats")
	}
}

// TestCompatConstructors: the deprecated wrappers in compat.go still hand
// off items end to end.
func TestCompatConstructors(t *testing.T) {
	for _, name := range []string{
		"NewFair", "NewUnfair", "NewEliminating", "NewEliminatingAdaptive",
	} {
		t.Run(name, func(t *testing.T) {
			var put func(int)
			var take func() int
			switch name {
			case "NewFair":
				q := NewFair[int]()
				if !q.Fair() {
					t.Fatal("NewFair built an unfair queue")
				}
				put, take = q.Put, q.Take
			case "NewUnfair":
				q := NewUnfair[int]()
				if q.Fair() {
					t.Fatal("NewUnfair built a fair queue")
				}
				put, take = q.Put, q.Take
			case "NewEliminating":
				e := NewEliminating(New[int](), 0, 2*time.Microsecond)
				if e.Adaptive() {
					t.Fatal("NewEliminating built an adaptive arena")
				}
				put, take = e.Put, e.Take
			case "NewEliminatingAdaptive":
				e := NewEliminatingAdaptive(New[int]())
				if !e.Adaptive() {
					t.Fatal("NewEliminatingAdaptive built a static arena")
				}
				put, take = e.Put, e.Take
			}
			done := make(chan int, 1)
			go func() {
				sum := 0
				for i := 0; i < 100; i++ {
					sum += take()
				}
				done <- sum
			}()
			want := 0
			for i := 0; i < 100; i++ {
				put(i)
				want += i
			}
			if got := <-done; got != want {
				t.Fatalf("transfer sum = %d, want %d", got, want)
			}
		})
	}
}
