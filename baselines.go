package synchq

import (
	"synchq/internal/baseline"
)

// NewNaive returns the naive monitor-based synchronous queue the paper
// presents as Listing 3: a single lock, a single item slot, and broadcast
// wakeups. It supports only the demand operations Put and Take. It exists
// for benchmarking and study.
func NewNaive[T any]() Queue[T] { return baseline.NewNaive[T]() }

// NewHanson returns Hanson's three-semaphore synchronous queue (the
// paper's Listing 1). It supports only the demand operations Put and Take;
// as the paper notes, the algorithm offers no simple way to support
// timeout. It exists for benchmarking and study.
func NewHanson[T any]() Queue[T] { return baseline.NewHanson[T]() }

// Java5Queue is the interface of the Java SE 5.0-style baseline: the full
// timed surface, but implemented with a single lock over two wait lists.
type Java5Queue[T any] interface {
	TimedQueue[T]
}

// NewJava5Fair returns the Java SE 5.0 SynchronousQueue algorithm in fair
// mode: FIFO pairing under a FIFO-fair entry lock (the configuration whose
// lock-handoff pileups the paper measures). It exists for benchmarking and
// study.
func NewJava5Fair[T any]() Java5Queue[T] { return baseline.NewJava5[T](true) }

// NewJava5Unfair returns the Java SE 5.0 SynchronousQueue algorithm in
// unfair mode: LIFO pairing under an ordinary mutex. It exists for
// benchmarking and study.
func NewJava5Unfair[T any]() Java5Queue[T] { return baseline.NewJava5[T](false) }

// NewHansonFast returns Hanson's queue over fast-path semaphores, the
// dl.util.concurrent streamlining the paper mentions in §3.1. Like
// NewHanson it supports only the demand operations. It exists for
// benchmarking and study.
func NewHansonFast[T any]() Queue[T] { return baseline.NewHansonFast[T]() }

// NewGoChannel returns a synchronous queue backed by an unbuffered Go
// channel — the idiomatic Go rendezvous, provided as an extra baseline for
// this reproduction (the paper predates Go).
func NewGoChannel[T any]() TimedQueue[T] { return baseline.NewChannel[T]() }

// Compile-time checks that the baselines satisfy the public interfaces.
var (
	_ Queue[int]      = (*baseline.Naive[int])(nil)
	_ Queue[int]      = (*baseline.Hanson[int])(nil)
	_ TimedQueue[int] = (*baseline.Java5[int])(nil)
	_ TimedQueue[int] = (*baseline.Channel[int])(nil)
)
