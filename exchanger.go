package synchq

import (
	"context"
	"time"

	"synchq/internal/exchanger"
	"synchq/internal/metrics"
)

// Exchanger is a synchronization point at which pairs of goroutines swap
// values: each party presents a value to Exchange and receives its
// partner's. It is the elimination-based swap channel of Scherer, Lea &
// Scott (2005) that the paper's §5 elimination discussion builds on; under
// high contention, meetings are spread across an arena of cache-padded
// slots rather than funneling through one word.
//
// Construct one with NewExchanger; an Exchanger must not be copied after
// first use.
type Exchanger[T any] struct {
	e    *exchanger.Exchanger[T]
	inst *Metrics
}

// NewExchanger returns an Exchanger with a platform-sized elimination
// arena. Of the options, only Instrument applies; the queue-shaping options
// (Fair, Sharded, Eliminating) are ignored.
func NewExchanger[T any](opts ...Option) *Exchanger[T] {
	c := buildConfig(opts)
	return &Exchanger[T]{
		e:    exchanger.New[T]().SetMetrics(c.wait.Metrics),
		inst: c.inst,
	}
}

// NewExchangerSize returns an Exchanger with an arena of exactly slots
// cells (minimum 1); exposed so the arena size can be studied. Options
// follow the NewExchanger contract.
func NewExchangerSize[T any](slots int, opts ...Option) *Exchanger[T] {
	c := buildConfig(opts)
	return &Exchanger[T]{
		e:    exchanger.NewSize[T](slots).SetMetrics(c.wait.Metrics),
		inst: c.inst,
	}
}

// Metrics returns the instrumentation set attached with the Instrument
// option, or nil for an uninstrumented exchanger.
func (x *Exchanger[T]) Metrics() *Metrics { return x.inst }

// Exchange presents v, waits for a partner, and returns the partner's
// value.
func (x *Exchanger[T]) Exchange(v T) T { return x.e.Exchange(v) }

// ExchangeTimeout is Exchange with patience d; ok is false if no partner
// arrived in time.
func (x *Exchanger[T]) ExchangeTimeout(v T, d time.Duration) (T, bool) {
	return x.e.ExchangeTimeout(v, d)
}

// ExchangeContext is Exchange abandoned when ctx is done; it returns
// ctx.Err() on cancellation and ErrTimeout on context deadline expiry.
func (x *Exchanger[T]) ExchangeContext(ctx context.Context, v T) (T, error) {
	if deadline, ok := ctx.Deadline(); ok {
		// Race the deadline and the cancel channel exactly as the
		// queues do: patience first, cancellation checked throughout.
		got, ok := x.e.ExchangeTimeout(v, time.Until(deadline))
		if ok {
			return got, nil
		}
		var zero T
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		return zero, ErrTimeout
	}
	got, st := x.e.ExchangeCancel(v, ctx.Done())
	if st == exchanger.OK {
		return got, nil
	}
	var zero T
	return zero, ctx.Err()
}

// EliminatingQueue wraps a synchronous queue with an elimination arena
// front-end: Put and Take first try, with a very short patience, to meet a
// counterpart in the arena, and only fall back to the underlying queue on
// failure. This is the paper's §5 future-work experiment; as the paper
// anticipates, it pays off only under extreme contention (see Ablation C
// in EXPERIMENTS.md).
//
// The front-end is a drop-in wrapper: it exposes the full SynchronousQueue
// surface (contexts, low-level waits, state probes, Close), delegating
// everything the arena cannot accelerate to the underlying queue.
type EliminatingQueue[T any] struct {
	q        *SynchronousQueue[T]
	arena    *exchanger.Arena[T]
	patience time.Duration
	m        *metrics.Handle // for FallbackNs; nil when uninstrumented
	inst     *Metrics
}

// Eliminating selects a static elimination front-end for
// NewEliminatingQueue: slots fixed arena cells (0 for the platform
// default) and patience per arena attempt (non-positive: 5µs). Ignored by
// New.
func Eliminating(slots int, patience time.Duration) Option {
	return func(c *config) {
		c.elim, c.elimAdaptive = true, false
		c.elimSlots, c.elimPatience = slots, patience
	}
}

// EliminatingAdaptive selects the self-tuning elimination front-end for
// NewEliminatingQueue: the arena's active width and per-attempt patience
// adapt online to the observed contention, and the arena collapses to
// direct hand-off — no detour at all beyond a periodic re-probe — when the
// queue is quiet. This removes the main drawback Ablation C found in the
// static front-end (a fixed latency tax at low contention) while keeping
// its benefit at high contention. It is the default front-end of
// NewEliminatingQueue; the option exists to override an earlier
// Eliminating in an options slice. Ignored by New.
func EliminatingAdaptive() Option {
	return func(c *config) {
		c.elim, c.elimAdaptive = true, true
	}
}

// NewEliminatingQueue returns a synchronous queue with an elimination
// front-end, configured by the same options as New (Fair, Sharded, Spins,
// Instrument) plus the front-end selectors Eliminating and
// EliminatingAdaptive. With neither selector it uses the adaptive
// front-end. The backing queue is built from the same options, so
//
//	q := synchq.NewEliminatingQueue[int](synchq.Fair(true), synchq.Instrument(m))
//
// is an instrumented fair queue behind an adaptive arena: arena hits show
// up in m as ElimHits and the "elim" histogram, arena misses that complete
// on the backing queue as the "fallback" histogram.
func NewEliminatingQueue[T any](opts ...Option) *EliminatingQueue[T] {
	c := buildConfig(opts)
	e := &EliminatingQueue[T]{
		q:    newFromConfig[T](c),
		m:    c.inst.handle(),
		inst: c.inst,
	}
	if c.elim && !c.elimAdaptive {
		e.patience = c.elimPatience
		if e.patience <= 0 {
			e.patience = 5 * time.Microsecond
		}
		e.arena = exchanger.NewArena[T](c.elimSlots)
	} else {
		e.arena = exchanger.NewArenaAdaptive[T](c.elimSlots)
	}
	e.arena.SetMetrics(c.wait.Metrics)
	return e
}

// Metrics returns the instrumentation set attached with the Instrument
// option (covering both the arena and the backing queue), or nil for an
// uninstrumented queue.
func (e *EliminatingQueue[T]) Metrics() *Metrics { return e.inst }

// Fair reports whether the backing queue pairs waiters in FIFO order.
// Arena hits are pairing-order-free regardless: elimination trades order
// for contention relief even on a fair backing queue.
func (e *EliminatingQueue[T]) Fair() bool { return e.q.Fair() }

// Shards returns the backing queue's current effective shard width (one
// unless built with the Sharded or AutoShard option).
func (e *EliminatingQueue[T]) Shards() int { return e.q.Shards() }

// MaxShards returns the backing queue's shard-width ceiling.
func (e *EliminatingQueue[T]) MaxShards() int { return e.q.MaxShards() }

// FabricStats snapshots the backing queue's shard fabric (ok false when
// the backing queue is unsharded).
func (e *EliminatingQueue[T]) FabricStats() (FabricStats, bool) { return e.q.FabricStats() }

// Adaptive reports whether the arena self-tunes (the EliminatingAdaptive
// option, the default front-end) rather than using fixed knobs (the
// Eliminating option).
func (e *EliminatingQueue[T]) Adaptive() bool { return e.arena.Adaptive() }

// tryGive makes one arena attempt to hand off v, under whichever patience
// policy the queue was built with.
func (e *EliminatingQueue[T]) tryGive(v T) bool {
	if e.arena.Adaptive() {
		return e.arena.TryGiveAdaptive(v)
	}
	return e.arena.TryGive(v, e.patience)
}

// tryTake makes one arena attempt to receive a value.
func (e *EliminatingQueue[T]) tryTake() (T, bool) {
	if e.arena.Adaptive() {
		return e.arena.TryTakeAdaptive()
	}
	return e.arena.TryTake(e.patience)
}

// arenaPatience is the longest one arena attempt may currently wait, used
// to decide whether a bounded operation can afford the detour.
func (e *EliminatingQueue[T]) arenaPatience() time.Duration {
	if e.arena.Adaptive() {
		return e.arena.Patience()
	}
	return e.patience
}

// Put transfers v to a consumer — via the arena if one is met there in
// time, otherwise through the underlying queue.
func (e *EliminatingQueue[T]) Put(v T) {
	t0 := e.m.Start()
	if e.tryGive(v) {
		return
	}
	e.q.Put(v)
	e.m.Since(metrics.FallbackNs, t0)
}

// Take receives a value from a producer — via the arena if one is met
// there in time, otherwise through the underlying queue.
func (e *EliminatingQueue[T]) Take() T {
	t0 := e.m.Start()
	if v, ok := e.tryTake(); ok {
		return v
	}
	v := e.q.Take()
	e.m.Since(metrics.FallbackNs, t0)
	return v
}

// Offer transfers v only if a counterpart is immediately available in the
// underlying queue (the arena requires waiting, so it takes no part in
// zero-patience operations).
func (e *EliminatingQueue[T]) Offer(v T) bool { return e.q.Offer(v) }

// Poll receives a value only if a counterpart is immediately available in
// the underlying queue.
func (e *EliminatingQueue[T]) Poll() (T, bool) { return e.q.Poll() }

// OfferTimeout transfers v, trying the arena first and then waiting on the
// underlying queue for the remaining patience.
func (e *EliminatingQueue[T]) OfferTimeout(v T, d time.Duration) bool {
	deadline := time.Now().Add(d)
	if d > e.arenaPatience() {
		t0 := e.m.Start()
		if e.tryGive(v) {
			return true
		}
		if e.q.OfferTimeout(v, time.Until(deadline)) {
			e.m.Since(metrics.FallbackNs, t0)
			return true
		}
		return false
	}
	return e.q.OfferTimeout(v, time.Until(deadline))
}

// PollTimeout receives a value, trying the arena first and then waiting on
// the underlying queue for the remaining patience.
func (e *EliminatingQueue[T]) PollTimeout(d time.Duration) (T, bool) {
	deadline := time.Now().Add(d)
	if d > e.arenaPatience() {
		t0 := e.m.Start()
		if v, ok := e.tryTake(); ok {
			return v, true
		}
		if v, ok := e.q.PollTimeout(time.Until(deadline)); ok {
			e.m.Since(metrics.FallbackNs, t0)
			return v, true
		}
		var zero T
		return zero, false
	}
	return e.q.PollTimeout(time.Until(deadline))
}

// PutContext transfers v to a consumer — via the arena when a partner is
// met there within the arena patience — abandoning the attempt if ctx is
// done first. Errors follow the SynchronousQueue.PutContext contract.
func (e *EliminatingQueue[T]) PutContext(ctx context.Context, v T) error {
	t0 := e.m.Start()
	if e.tryGive(v) {
		return nil
	}
	err := e.q.PutContext(ctx, v)
	if err == nil {
		e.m.Since(metrics.FallbackNs, t0)
	}
	return err
}

// TakeContext receives a value — via the arena when a partner is met there
// within the arena patience — abandoning the attempt if ctx is done first.
// Errors follow the SynchronousQueue.TakeContext contract.
func (e *EliminatingQueue[T]) TakeContext(ctx context.Context) (T, error) {
	t0 := e.m.Start()
	if v, ok := e.tryTake(); ok {
		return v, nil
	}
	v, err := e.q.TakeContext(ctx)
	if err == nil {
		e.m.Since(metrics.FallbackNs, t0)
	}
	return v, err
}

// OfferWait transfers v, trying the arena first when the deadline leaves
// room for the detour, then waiting on the underlying queue until the
// deadline passes (zero: no deadline) or cancel fires (nil: never).
func (e *EliminatingQueue[T]) OfferWait(v T, deadline time.Time, cancel <-chan struct{}) bool {
	if deadline.IsZero() || time.Until(deadline) > e.arenaPatience() {
		t0 := e.m.Start()
		if e.tryGive(v) {
			return true
		}
		if e.q.OfferWait(v, deadline, cancel) {
			e.m.Since(metrics.FallbackNs, t0)
			return true
		}
		return false
	}
	return e.q.OfferWait(v, deadline, cancel)
}

// PollWait receives a value, trying the arena first when the deadline
// leaves room for the detour, then waiting on the underlying queue until
// the deadline passes (zero: no deadline) or cancel fires (nil: never).
func (e *EliminatingQueue[T]) PollWait(deadline time.Time, cancel <-chan struct{}) (T, bool) {
	if deadline.IsZero() || time.Until(deadline) > e.arenaPatience() {
		t0 := e.m.Start()
		if v, ok := e.tryTake(); ok {
			return v, true
		}
		if v, ok := e.q.PollWait(deadline, cancel); ok {
			e.m.Since(metrics.FallbackNs, t0)
			return v, true
		}
		var zero T
		return zero, false
	}
	return e.q.PollWait(deadline, cancel)
}

// HasWaitingConsumer reports whether a consumer was observed waiting in
// the underlying queue. Arena waiters are not counted: their patience is
// microseconds, too short to act on.
func (e *EliminatingQueue[T]) HasWaitingConsumer() bool { return e.q.HasWaitingConsumer() }

// HasWaitingProducer reports whether a producer was observed waiting in
// the underlying queue.
func (e *EliminatingQueue[T]) HasWaitingProducer() bool { return e.q.HasWaitingProducer() }

// IsEmpty reports whether the underlying queue was observed with no
// waiting producers or consumers.
func (e *EliminatingQueue[T]) IsEmpty() bool { return e.q.IsEmpty() }

// PutAll transfers every item to consumers through the backing queue,
// bypassing the elimination arena: an arena exchange pairs exactly one
// producer with one consumer, so a k-item burst gains nothing from it,
// while the backing queue's batch path amortizes the per-item claims.
func (e *EliminatingQueue[T]) PutAll(items []T) { e.q.PutAll(items) }

// PutAllContext transfers items through the backing queue until ctx is
// done; see SynchronousQueue.PutAllContext for the partial-fill contract.
func (e *EliminatingQueue[T]) PutAllContext(ctx context.Context, items []T) (int, error) {
	return e.q.PutAllContext(ctx, items)
}

// TakeBatch receives up to max values through the backing queue (the
// arena is bypassed; see PutAll).
func (e *EliminatingQueue[T]) TakeBatch(max int) []T { return e.q.TakeBatch(max) }

// TakeBatchContext receives up to max values through the backing queue
// until ctx is done.
func (e *EliminatingQueue[T]) TakeBatchContext(ctx context.Context, max int) ([]T, error) {
	return e.q.TakeBatchContext(ctx, max)
}

// DrainTo appends up to max immediately available values to buf without
// waiting, through the backing queue.
func (e *EliminatingQueue[T]) DrainTo(buf []T, max int) []T { return e.q.DrainTo(buf, max) }

// Close shuts the underlying queue down (see SynchronousQueue.Close).
// Arena waiters are not woken: every arena attempt is patience-bounded to
// microseconds, after which the party falls through to the queue and
// observes the closed state there.
func (e *EliminatingQueue[T]) Close() { e.q.Close() }

// Closed reports whether Close has been called.
func (e *EliminatingQueue[T]) Closed() bool { return e.q.Closed() }

var _ TimedQueue[int] = (*EliminatingQueue[int])(nil)
