// Package synchq provides scalable synchronous queues for Go: nonblocking,
// contention-free rendezvous channels in which producers and consumers wait
// for one another, "shake hands," and leave in pairs.
//
// The package is a faithful reproduction of the algorithms of Scherer, Lea
// & Scott, "Scalable Synchronous Queues" (PPoPP 2006) — the algorithms
// adopted as java.util.concurrent.SynchronousQueue in Java 6 — implemented
// from scratch in Go together with every baseline the paper evaluates.
//
// # Queues
//
// Two algorithm families are offered, selected with the Fair option of New:
//
//   - New(Fair(true)) returns the fair (FIFO) synchronous queue, a
//     nonblocking dual queue: the longest-waiting producer pairs with the
//     next arriving consumer and vice versa.
//   - New() returns the unfair (LIFO) synchronous queue, a nonblocking
//     dual stack: the most recently arrived waiter pairs first, which
//     improves locality (hot threads stay hot) at the cost of ordering
//     guarantees.
//
// Further options compose on the same call: Sharded stripes the queue
// across independent shards with cross-shard steals, AutoShard (or
// Sharded(0)) lets the fabric pick its own effective width from observed
// contention, Segmented bounds memory with a segment-backed core, and
// Instrument attaches counters. The deprecated wrapper constructors
// (NewFair, NewUnfair, NewEliminating, NewEliminatingAdaptive) remain in
// compat.go.
//
// Both support demand operations (Put/Take block until a counterpart
// arrives), polar operations (Offer/Poll succeed only if a counterpart is
// already waiting), timed operations with a patience interval, and
// context-aware operations for cancellation.
//
// Baseline constructors (NewNaive, NewHanson, NewJava5Fair, NewJava5Unfair,
// NewChannel) expose the comparison algorithms behind the same interface;
// they exist for benchmarking and study, not production use.
//
// # Extensions
//
// TransferQueue extends the fair queue with asynchronous puts (the paper's
// §5 TransferQueue). Exchanger is the elimination-based swap channel the
// paper's elimination discussion builds on; NewEliminatingQueue fronts a
// synchronous queue with an elimination arena.
//
// The pool subpackage provides a cached thread pool — the Go analogue of
// java.util.concurrent.ThreadPoolExecutor over a SynchronousQueue — used by
// the paper's "real-world" benchmark.
//
// # When to use this instead of a channel
//
// An unbuffered Go channel is itself a synchronous queue, and for most
// programs it is the right tool. This package exists for workloads that
// need the paper's richer interface — leave-if-no-partner Offer/Poll with
// zero or bounded patience, a choice between strict FIFO fairness and
// locality-preserving LIFO pairing, and waiting-counterpart introspection —
// and for studying the algorithms themselves.
package synchq
