package synchq

import (
	"expvar"
	"sync"
	"time"

	"synchq/internal/metrics"
	"synchq/internal/shard"
)

// Metrics is the public instrumentation surface of this package: a
// lock-free set of event counters and log₂-nanosecond latency histograms
// that any structure built with the Instrument option records into.
//
// Create one with NewMetrics, pass it to New, NewTransferQueue,
// NewEliminatingQueue, or NewExchanger via Instrument, and read it back
// with Stats (or the structure's Metrics accessor). One Metrics may be
// shared by several structures, in which case their events aggregate.
// Recording is allocation-free and wait-free; an uninstrumented structure
// pays one predictable branch per would-be event and reads no clocks.
//
// A Metrics must not be copied after first use.
type Metrics struct {
	root *metrics.Handle

	mu     sync.Mutex
	shards []*metrics.Handle // per-shard children of a Sharded queue
	fabric *fabricHooks      // introspection of the sharded queue built with this Metrics
}

// NewMetrics returns an empty metrics set, ready to be attached with
// Instrument.
func NewMetrics() *Metrics {
	return &Metrics{root: metrics.New()}
}

// Instrument attaches m to the structure under construction: every
// hand-off, wait, timeout, and CAS retry it performs is recorded into m.
// Pass the same m to several structures to aggregate them. A nil m is
// ignored (the structure stays uninstrumented).
func Instrument(m *Metrics) Option {
	return func(c *config) {
		c.inst = m
		c.wait.Metrics = m.handle()
	}
}

// handle returns the root recording handle (nil on a nil Metrics), which
// is what uninstrumented construction paths thread through core.WaitConfig.
func (m *Metrics) handle() *metrics.Handle {
	if m == nil {
		return nil
	}
	return m.root
}

// RawHandle returns the root recording handle — the internal counter set a
// Metrics wraps. It exists so sibling tiers built on this module (the pool
// executor, custom fabrics) can record into the same handle a queue was
// instrumented with; the returned value is opaque outside this module and
// nil on a nil Metrics.
func (m *Metrics) RawHandle() *metrics.Handle { return m.handle() }

// shardHandle returns (creating as needed) the child handle for shard i,
// so a sharded queue's per-shard behavior stays separately visible while
// Stats presents the merged view.
func (m *Metrics) shardHandle(i int) *metrics.Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.shards) <= i {
		m.shards = append(m.shards, metrics.New())
	}
	return m.shards[i]
}

// shardHandles snapshots the child-handle slice.
func (m *Metrics) shardHandles() []*metrics.Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*metrics.Handle(nil), m.shards...)
}

// setFabric records the sharded queue's introspection hooks so
// FabricStats is reachable from the Metrics side as well as the queue's.
// When one Metrics instruments several sharded queues (their counters
// aggregate), the hooks of the most recently built one win.
func (m *Metrics) setFabric(h *fabricHooks) {
	m.mu.Lock()
	m.fabric = h
	m.mu.Unlock()
}

// FabricStats snapshots the sharded fabric of the queue this Metrics
// instruments — the same snapshot the queue's own FabricStats method
// returns. ok is false on a nil Metrics, a Metrics not attached to any
// queue yet, or one attached only to unsharded structures.
func (m *Metrics) FabricStats() (FabricStats, bool) {
	if m == nil {
		return FabricStats{}, false
	}
	m.mu.Lock()
	h := m.fabric
	m.mu.Unlock()
	if h == nil {
		return FabricStats{}, false
	}
	return h.stats(), true
}

// FabricShardStats is one shard's slice of FabricStats.
type FabricShardStats struct {
	// Index is the shard's position in the fabric.
	Index int `json:"index"`
	// Active reports whether the shard is within the current effective
	// width (new arrivals may route to it). Inactive shards can still
	// hold waiters committed before a collapse; they drain through the
	// ordinary sweep/steal path.
	Active bool `json:"active"`
	// Depth gauges the shard's committed demand-path waiters.
	Depth int64 `json:"depth"`
	// Steals counts hand-offs completed on this shard by operations homed
	// elsewhere.
	Steals int64 `json:"steals"`
}

// FabricStats is a point-in-time snapshot of a sharded queue's fabric:
// the effective width against its ceiling, the self-scaling controller's
// transition count, and the per-shard depth/steal breakdown. Field names
// (JSON tags) are stable in the same way the metrics counter names are.
type FabricStats struct {
	// MaxShards is the constructed shard count — the width ceiling.
	MaxShards int `json:"max_shards"`
	// Width is the current effective width (Shards()).
	Width int `json:"width"`
	// Adaptive reports whether the width is controller-managed
	// (AutoShard / Sharded(0)) rather than fixed.
	Adaptive bool `json:"adaptive"`
	// WidthChanges counts the controller's width transitions.
	WidthChanges int64 `json:"width_changes"`
	// Steals, ProbeMisses and ProbeSkips aggregate the per-shard sweep
	// counters: completed cross-shard rescues, probes that found a stale
	// presence hint, and sweeps that passed over a skip-listed shard.
	Steals      int64 `json:"steals"`
	ProbeMisses int64 `json:"probe_misses"`
	ProbeSkips  int64 `json:"probe_skips"`
	// Shards is the per-shard breakdown, MaxShards entries in index order.
	Shards []FabricShardStats `json:"shards"`
}

// fabricStatsFrom converts the internal fabric snapshot to the public
// type.
func fabricStatsFrom(s shard.Stats) FabricStats {
	out := FabricStats{
		MaxShards:    s.MaxShards,
		Width:        s.Width,
		Adaptive:     s.Adaptive,
		WidthChanges: s.WidthChanges,
		Steals:       s.Steals,
		ProbeMisses:  s.ProbeMisses,
		ProbeSkips:   s.ProbeSkips,
		Shards:       make([]FabricShardStats, len(s.Shards)),
	}
	for i, sh := range s.Shards {
		out.Shards[i] = FabricShardStats{
			Index:  sh.Index,
			Active: sh.Active,
			Depth:  sh.Depth,
			Steals: sh.Steals,
		}
	}
	return out
}

// SampleRate is the latency layer's sampling factor: the structures time
// one in SampleRate operations, chosen uniformly at random per operation,
// which is what keeps the metrics-on hand-off path within the
// bench-latency overhead budget. Latency histogram counts are therefore
// sample counts (multiply by SampleRate to estimate operation counts);
// sampling at the arrival site is unbiased for the distributions
// themselves. The event counters in Stats.Counters are exact, never
// sampled.
const SampleRate = metrics.SampleRate

// LatencyStats summarizes one latency histogram. All values are
// nanoseconds. Percentiles are bucket upper bounds of the underlying
// log₂-ns histogram, so they over-estimate by less than 2×; Max is the
// representative value of the highest nonempty bucket, and a Max of 2⁶² ns
// marks top-bucket saturation rather than a measurement. Count is the
// number of sampled operations (see SampleRate). Buckets carries the raw
// bucket counts (bucket 0 holds zero-duration samples; bucket i covers
// [2^(i−1), 2^i−1] ns), which is what makes snapshots mergeable.
type LatencyStats struct {
	Count   int64   `json:"count"`
	P50     int64   `json:"p50_ns"`
	P90     int64   `json:"p90_ns"`
	P99     int64   `json:"p99_ns"`
	P999    int64   `json:"p999_ns"`
	Max     int64   `json:"max_ns"`
	Buckets []int64 `json:"buckets"`
}

// Stats is a point-in-time snapshot of a Metrics set: event counters by
// stable name, and latency histograms by stable name (handoff, spin, park,
// wasted, steal, elim, fallback — empty histograms are omitted). It is
// plain data: JSON-marshalable for dashboards, mergeable across structures
// or shards with Merge, and diffable by subtracting counters and bucket
// counts.
type Stats struct {
	Counters map[string]int64        `json:"counters"`
	Latency  map[string]LatencyStats `json:"latency"`
}

// latencyStats renders one histogram's bucket counts as LatencyStats.
func latencyStats(c metrics.BucketCounts) LatencyStats {
	return LatencyStats{
		Count:   c.Count(),
		P50:     c.Percentile(0.50),
		P90:     c.Percentile(0.90),
		P99:     c.Percentile(0.99),
		P999:    c.Percentile(0.999),
		Max:     c.Max(),
		Buckets: append([]int64(nil), c[:]...),
	}
}

// statsOf builds a Stats from one handle's snapshots.
func statsOf(cs metrics.Snapshot, hs metrics.HistSnapshot) Stats {
	s := Stats{
		Counters: cs.Map(),
		Latency:  make(map[string]LatencyStats, metrics.NumHistIDs),
	}
	for i := metrics.HistID(0); i < metrics.NumHistIDs; i++ {
		if c := hs.Get(i); c.Count() > 0 {
			s.Latency[i.String()] = latencyStats(c)
		}
	}
	return s
}

// Stats returns the merged view of everything recorded into m: the root
// handle plus, for sharded queues, every per-shard child. Safe to call at
// any time; the snapshot is per-counter atomic.
func (m *Metrics) Stats() Stats {
	if m == nil {
		return Stats{Counters: map[string]int64{}, Latency: map[string]LatencyStats{}}
	}
	cs := m.root.Snapshot()
	hs := m.root.Histograms()
	for _, h := range m.shardHandles() {
		shc := h.Snapshot()
		for i := range cs {
			cs[i] += shc[i]
		}
		hs = hs.Add(h.Histograms())
	}
	return statsOf(cs, hs)
}

// ShardStats returns one Stats per shard of a Sharded queue built with
// this Metrics (empty for unsharded structures). Fabric-level events —
// steal counts and steal latency — live on the merged view, not here.
func (m *Metrics) ShardStats() []Stats {
	if m == nil {
		return nil
	}
	hs := m.shardHandles()
	out := make([]Stats, len(hs))
	for i, h := range hs {
		out[i] = statsOf(h.Snapshot(), h.Histograms())
	}
	return out
}

// Reset zeroes every counter and histogram (root and shards). Events
// recorded concurrently land on one side or the other; diff Stats
// snapshots when interval exactness under load matters.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.root.Reset()
	for _, h := range m.shardHandles() {
		h.Reset()
	}
}

// Merge returns the combination of two snapshots: counters summed, latency
// histograms merged bucket-wise with percentiles recomputed from the
// merged buckets. Use it to aggregate Stats across queues or processes.
func (s Stats) Merge(o Stats) Stats {
	out := Stats{
		Counters: make(map[string]int64, len(s.Counters)),
		Latency:  make(map[string]LatencyStats, len(s.Latency)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	merge := func(k string, v LatencyStats) {
		var c metrics.BucketCounts
		copy(c[:], v.Buckets)
		if prev, ok := out.Latency[k]; ok {
			var p metrics.BucketCounts
			copy(p[:], prev.Buckets)
			c = c.Add(p)
		}
		out.Latency[k] = latencyStats(c)
	}
	for k, v := range s.Latency {
		merge(k, v)
	}
	for k, v := range o.Latency {
		merge(k, v)
	}
	return out
}

// LatencyRecorder exposes direct recording into one of m's histograms
// under its stable name ("handoff", "spin", "park", "wasted", "steal",
// "elim", "fallback"), for callers measuring phases the structures cannot
// see (e.g. end-to-end application latency around a queue operation).
// Unknown names return a no-op recorder.
func (m *Metrics) LatencyRecorder(name string) func(time.Duration) {
	if m == nil {
		return func(time.Duration) {}
	}
	for i := metrics.HistID(0); i < metrics.NumHistIDs; i++ {
		if i.String() == name {
			id := i
			return func(d time.Duration) { m.root.Record(id, d) }
		}
	}
	return func(time.Duration) {}
}

// statsPublished is the rebind registry behind Metrics.Publish (expvar
// forbids re-publishing a name, so the Func indirects through it).
var (
	statsPubMu     sync.Mutex
	statsPublished = make(map[string]*Metrics)
)

// Publish exposes the merged Stats under the given expvar name, visible at
// /debug/vars when the process serves HTTP. The published JSON has the
// shape documented on Stats. Re-publishing a name rebinds it to m.
func (m *Metrics) Publish(name string) {
	statsPubMu.Lock()
	defer statsPubMu.Unlock()
	if _, ok := statsPublished[name]; ok {
		statsPublished[name] = m
		return
	}
	statsPublished[name] = m
	expvar.Publish(name, expvar.Func(func() any {
		statsPubMu.Lock()
		cur := statsPublished[name]
		statsPubMu.Unlock()
		return cur.Stats()
	}))
}
